"""Tests for the telemetry subsystem (events, metrics, exporters).

The two load-bearing guarantees:

* **disabled = free and inert** — a disabled hub swallows nothing and
  touches nothing;
* **enabled = observation only** — a run with telemetry on is
  bit-identical to the same run with it off.
"""

import io
import json

import pytest

from repro.config import libra_config
from repro.core import LibraScheduler
from repro.gpu import GPUSimulator
from repro.telemetry import (DRAMSample, FSMState, FSMTransition, HUB,
                             HarnessSpan, Histogram, JsonlSink,
                             MetricsRegistry, PID_JOB, PID_WORKER0,
                             PhaseBegin, PhaseEnd, PointTraceSink,
                             RecordingSink, TileDispatch, TileRetire,
                             chrome_trace, fleet_chrome_trace,
                             fleet_trace_events, metric_name,
                             render_exposition, telemetry_session)
from repro.telemetry.exposition import cumulative_counts
from repro.workloads import TraceBuilder, make_scene_builder

WIDTH, HEIGHT, TILE = 256, 128, 32


def _small_traces(benchmark="GDL", frames=2):
    builder = make_scene_builder(benchmark, WIDTH, HEIGHT)
    return TraceBuilder(builder, WIDTH, HEIGHT, TILE).build_many(frames)


def _run_libra(traces):
    cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
    sim = GPUSimulator(cfg, scheduler=LibraScheduler(cfg.scheduler),
                       name="libra")
    return sim.run(traces)


def _fingerprint(result):
    """Everything observable about a run, hashable for comparison."""
    return (
        result.total_cycles,
        result.raster_dram_accesses,
        tuple((f.frame_index, f.geometry_cycles, f.raster_cycles,
               f.order, f.supertile_size,
               round(f.texture_hit_ratio, 12), f.raster_dram_accesses,
               tuple(sorted(f.per_tile_dram.items())))
              for f in result.frames),
    )


class TestHubLifecycle:
    def test_disabled_by_default_and_emits_nothing(self):
        assert HUB.enabled is False
        sink = RecordingSink()
        # The instrumentation contract: emit() is only reached behind an
        # ``if HUB.enabled:`` guard, so a disabled hub simply never sees
        # events.  Simulate a full run and assert nothing was recorded.
        HUB.add_sink(sink)
        try:
            _run_libra(_small_traces(frames=1))
        finally:
            HUB.remove_sink(sink)
        assert sink.events == []

    def test_session_restores_prior_state(self):
        assert HUB.enabled is False
        with telemetry_session(RecordingSink()):
            assert HUB.enabled is True
        assert HUB.enabled is False
        assert HUB.sinks == []

    def test_seq_is_strictly_increasing_emit_order(self):
        sink = RecordingSink()
        with telemetry_session(sink):
            HUB.emit(PhaseBegin(name="a", ts=5))
            HUB.emit(PhaseEnd(name="a", ts=9))
            HUB.emit(PhaseBegin(name="b", ts=9))
        seqs = [e.seq for e in sink.events]
        assert len(seqs) == 3
        assert all(b > a for a, b in zip(seqs, seqs[1:]))

    def test_run_event_stream_is_ordered(self):
        sink = RecordingSink()
        with telemetry_session(sink):
            _run_libra(_small_traces(frames=2))
        assert len(sink.events) > 0
        seqs = [e.seq for e in sink.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # Phases nest: the first event is the run-begin, the last the
        # run-end, and every frame emits geometry before raster.
        assert isinstance(sink.events[0], PhaseBegin)
        assert sink.events[0].name.startswith("run:")
        assert isinstance(sink.events[-1], PhaseEnd)
        names = [e.name for e in sink.events if isinstance(e, PhaseBegin)]
        assert names.count("geometry") == 2
        assert names.count("raster") == 2


class TestParity:
    def test_enabled_run_is_bit_identical_to_disabled(self):
        traces = _small_traces(frames=2)
        plain = _fingerprint(_run_libra(traces))
        with telemetry_session(RecordingSink()):
            observed = _fingerprint(_run_libra(traces))
        again = _fingerprint(_run_libra(traces))
        assert observed == plain
        assert again == plain  # and the hub left no residue behind


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        reg.gauge("c").set(2.5)
        assert reg.snapshot() == {"a.b": 5, "c": 2.5}
        with pytest.raises(ValueError):
            reg.counter("a.b").inc(-1)

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_histogram_bucket_edges(self):
        h = Histogram("h", (10, 20, 40))
        # Inclusive upper bounds: 10 -> first bucket, 11 -> second,
        # 40 -> last bounded bucket, 41 -> overflow.
        for v in (0, 10, 11, 20, 21, 40, 41, 1000):
            h.observe(v)
        assert h.counts == [2, 2, 2, 2]
        assert h.count == 8
        assert h.min_seen == 0 and h.max_seen == 1000
        assert h.mean == pytest.approx(sum((0, 10, 11, 20, 21, 40, 41,
                                            1000)) / 8)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (10, 10, 20))
        with pytest.raises(ValueError):
            Histogram("h", (20, 10))

    def test_histogram_snapshot_shape(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (100, 200))
        h.observe(50)
        h.observe(250)
        snap = reg.snapshot()
        assert snap["lat.count"] == 2
        assert snap["lat.sum"] == 300
        assert snap["lat.le_100"] == 1
        assert snap["lat.le_200"] == 0
        assert snap["lat.le_inf"] == 1

    def test_reset_keeps_cached_instruments_live(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")
        counter.inc(3)
        reg.reset()
        assert reg.snapshot()["n"] == 0
        counter.inc()  # the cached reference still feeds the registry
        assert reg.snapshot()["n"] == 1

    def test_width_limited_counter_saturates(self):
        # The paper's Section III-E stat-buffer widths: 16-bit access
        # and 24-bit instruction fields saturate instead of wrapping.
        reg = MetricsRegistry()
        access = reg.counter("st.accesses", width_bits=16)
        access.inc((1 << 16) - 2)
        assert not access.saturated
        access.inc(5)  # would cross the ceiling
        assert access.value == (1 << 16) - 1
        assert access.saturated
        access.inc(1000)  # stays pinned, never wraps
        assert access.value == (1 << 16) - 1
        instr = reg.counter("st.instructions", width_bits=24)
        instr.inc(1 << 30)
        assert instr.value == (1 << 24) - 1

    def test_counter_width_fixed_at_creation(self):
        reg = MetricsRegistry()
        c = reg.counter("n", width_bits=8)
        assert reg.counter("n", width_bits=32) is c  # width ignored
        c.inc(10_000)
        assert c.value == 255
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad", width_bits=0)

    def test_histogram_boundary_values_merge_consistently(self):
        # Observations exactly on bucket bounds must land in the same
        # bucket whether observed directly or folded in via merge.
        a = Histogram("h", (10, 20, 40))
        b = Histogram("h", (10, 20, 40))
        for v in (10, 20, 40):
            a.observe(v)
            b.observe(v)
        a.merge(b)
        assert a.counts == [2, 2, 2, 0]
        assert a.count == 6
        assert a.total == 140
        assert a.min_seen == 10 and a.max_seen == 40

    def test_histogram_merge_rejects_bucket_mismatch(self):
        a = Histogram("h", (10, 20))
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(Histogram("h", (10, 30)))

    def test_dump_merge_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.counter("w", width_bits=16).inc(70_000)  # saturated
        reg.gauge("g").set(1.25)
        h = reg.histogram("lat", (100, 200))
        h.observe(100)
        h.observe(250)
        rebuilt = MetricsRegistry.from_state(reg.dump())
        assert rebuilt.snapshot() == reg.snapshot()
        # The width survives the trip: merging more keeps saturating.
        rebuilt.counter("w").inc(1)
        assert rebuilt.snapshot()["w"] == (1 << 16) - 1

    def test_merge_adds_counters_and_histograms(self):
        a = MetricsRegistry()
        a.counter("dram.reads").inc(10)
        a.histogram("lat", (100,)).observe(50)
        a.gauge("ratio").set(0.5)
        b = MetricsRegistry()
        b.counter("dram.reads").inc(32)
        b.histogram("lat", (100,)).observe(150)
        b.gauge("ratio").set(0.9)
        a.merge(b)
        snap = a.snapshot()
        assert snap["dram.reads"] == 42
        assert snap["lat.count"] == 2
        assert snap["lat.le_100"] == 1
        assert snap["lat.le_inf"] == 1
        assert snap["ratio"] == 0.9  # last write wins

    def test_merge_rejects_unknown_state_type(self):
        with pytest.raises(ValueError, match="unknown state type"):
            MetricsRegistry().merge({"x": {"type": "exotic", "value": 1}})

    def test_run_populates_expected_names(self):
        with telemetry_session(RecordingSink()):
            _run_libra(_small_traces(frames=2))
            snap = HUB.metrics.snapshot()
        assert snap["frames"] == 2
        assert snap["ru0.tiles_retired"] > 0
        assert snap["ru0.tile_latency_cycles.count"] > 0
        assert snap["dram.reads"] > 0
        assert 0.0 <= snap["l1tex.hit_ratio"] <= 1.0
        assert snap["l2.accesses"] > 0


class TestChromeTrace:
    def _events(self):
        events = [
            PhaseBegin(name="raster", ts=0, frame=0),
            TileDispatch(ru=0, tile=(1, 2), ts=0),
            TileRetire(ru=0, tile=(1, 2), ts=400, start_ts=0,
                       dram_lines=7, instructions=64),
            FSMTransition(machine="order", old="zorder",
                          new="temperature"),
            DRAMSample(ts=1000, requests=12, utilization=0.4,
                       latency_cycles=150.0),
            PhaseEnd(name="raster", ts=1200, frame=0),
            HarnessSpan(name="GDL/libra", wall_start_s=10.0,
                        wall_dur_s=0.5, status="ok", attempts=1),
        ]
        for i, event in enumerate(events):
            event.seq = i + 1
        return events

    def test_document_schema(self):
        doc = chrome_trace(self._events(), metrics={"frames": 1})
        # Round-trip through JSON: must serialize and keep its shape.
        doc = json.loads(json.dumps(doc))
        assert isinstance(doc["traceEvents"], list)
        for entry in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(entry)
            assert entry["ph"] == "M" or isinstance(entry["ts"], int)
            if entry["ph"] == "X":
                assert entry["dur"] >= 1
        assert doc["otherData"]["metrics"] == {"frames": 1}

    def test_track_mapping(self):
        events = chrome_trace(self._events())["traceEvents"]
        by_ph = {}
        for entry in events:
            by_ph.setdefault(entry["ph"], []).append(entry)
        # Tile span on the RU process, harness span on the harness one.
        pids = {e["pid"] for e in by_ph["X"]}
        assert 100 in pids and 999 in pids
        assert {e["pid"] for e in by_ph["B"]} == {0}
        assert any(e["name"] == "dram.bandwidth" for e in by_ph["C"])
        assert any(e["name"].startswith("fsm:") for e in by_ph["i"])
        names = {e["args"]["name"] for e in by_ph["M"]
                 if e["name"] == "process_name"}
        assert {"sim", "RU 0", "harness"} <= names

    def test_missing_ts_reuses_last_seen(self):
        events = chrome_trace(self._events())["traceEvents"]
        fsm = next(e for e in events if e["name"].startswith("fsm:"))
        assert fsm["ts"] == 400  # the TileRetire before it
        assert fsm["args"]["ts_inferred"] is True

    def test_process_and_thread_metadata(self):
        events = chrome_trace(self._events())["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        by_pid = {}
        for entry in meta:
            by_pid.setdefault(entry["pid"], {})[entry["name"]] = \
                entry["args"]
        for pid in (0, 100, 999):
            assert by_pid[pid]["process_name"]["name"]
            assert by_pid[pid]["process_sort_index"]["sort_index"] == pid
        # The thread label names the time domain of each track.
        assert by_pid[0]["thread_name"]["name"] == "simulated cycles"
        assert by_pid[999]["thread_name"]["name"] == "wall clock"

    def test_ts_units_recorded_in_other_data(self):
        doc = chrome_trace(self._events())
        units = doc["otherData"]["ts_units"]
        assert units["harness"] == "wall-clock microseconds"
        assert units["sim"] == units["ru"] == "simulated GPU cycles"
        # The legacy single-unit key stays for older readers.
        assert doc["otherData"]["ts_unit"] == "simulated GPU cycles"

    def test_tsless_frame_event_clamped_into_its_frame(self):
        # Frame 0 runs [0, 1000], frame 1 runs [5000, 6000].  An FSM
        # snapshot for frame 1 emitted before frame 1's timed phases
        # (so last_ts is still 1000) must not land at the end of frame
        # 0 — it is clamped forward to frame 1's begin.
        events = [
            PhaseBegin(name="frame", ts=0, frame=0),
            PhaseEnd(name="frame", ts=1000, frame=0),
            FSMState(machine="order", state="zorder", frame=1),
            PhaseBegin(name="frame", ts=5000, frame=1),
            PhaseEnd(name="frame", ts=6000, frame=1),
        ]
        for i, event in enumerate(events):
            event.seq = i + 1
        trace = chrome_trace(events)["traceEvents"]
        fsm = next(e for e in trace if e["name"].startswith("fsm:"))
        assert fsm["ts"] == 5000
        assert fsm["args"]["ts_inferred"] is True

    def test_tsless_frame_event_clamped_backwards(self):
        # Symmetrically: a frame-0 instant emitted after a later
        # timestamp was seen clamps back into frame 0's window.
        events = [
            PhaseBegin(name="frame", ts=0, frame=0),
            PhaseEnd(name="frame", ts=1000, frame=0),
            PhaseBegin(name="frame", ts=5000, frame=1),
            FSMState(machine="order", state="zorder", frame=0),
            PhaseEnd(name="frame", ts=6000, frame=1),
        ]
        for i, event in enumerate(events):
            event.seq = i + 1
        trace = chrome_trace(events)["traceEvents"]
        fsm = next(e for e in trace if e["name"].startswith("fsm:"))
        assert fsm["ts"] == 1000
        assert fsm["args"]["ts_inferred"] is True


class TestCliTrace:
    def test_trace_tri_overlap_acceptance(self, capsys, tmp_path):
        from repro.cli import main
        out = str(tmp_path / "trace.json")
        code = main(["--width", "256", "--height", "128",
                     "trace", "tri_overlap", "--frames", "2",
                     "--out", out])
        assert code == 0
        doc = json.loads(open(out).read())
        events = doc["traceEvents"]
        assert events
        # Per-RU tile duration events, FSM instants, DRAM counter track.
        assert any(e["ph"] == "X" and e["pid"] >= 100 and e["pid"] < 999
                   for e in events)
        assert any(e["ph"] == "i" and e["name"].startswith("fsm:")
                   for e in events)
        assert any(e["ph"] == "C" and e["name"] == "dram.bandwidth"
                   for e in events)
        assert capsys.readouterr().out.startswith("wrote ")

    def test_trace_frames_format_unchanged(self, capsys, tmp_path):
        from repro.cli import main
        from repro.workloads import load_traces
        out = str(tmp_path / "t.jsonl.gz")
        code = main(["--width", "256", "--height", "128",
                     "trace", "GDL", "--frames", "2", "--out", out])
        assert code == 0
        assert len(load_traces(out)) == 2


class TestExposition:
    def test_renders_every_metric_family(self):
        reg = MetricsRegistry()
        reg.counter("dram.reads").inc(7)
        reg.gauge("l1tex.hit_ratio").set(0.5)
        h = reg.histogram("lat.s", (0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = render_exposition(reg)
        assert ("# TYPE repro_dram_reads_total counter\n"
                "repro_dram_reads_total 7") in text
        assert ("# TYPE repro_l1tex_hit_ratio gauge\n"
                "repro_l1tex_hit_ratio 0.5") in text
        assert "# TYPE repro_lat_s histogram" in text
        assert 'repro_lat_s_bucket{le="0.1"} 1' in text
        assert 'repro_lat_s_bucket{le="1"} 2' in text
        assert 'repro_lat_s_bucket{le="+Inf"} 3' in text
        assert "repro_lat_s_count 3" in text
        assert "repro_lat_s_sum 5.55" in text
        assert text.endswith("\n")

    def test_names_mangled_into_exposition_charset(self):
        assert metric_name("http.latency_s.job.result") \
            == "repro_http_latency_s_job_result"
        assert metric_name("a-b c/d", "_total") == "repro_a_b_c_d_total"
        import re
        for dotted in ("x.y", "weird name!", "a:b"):
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*",
                                metric_name(dotted))

    def test_inf_bucket_equals_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (10, 20))
        for v in (5, 15, 25, 100):
            h.observe(v)
        text = render_exposition(reg)
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert "repro_lat_count 4" in text
        assert cumulative_counts(h.counts)[-1] == h.count

    def test_render_is_pure_function_of_dump_state(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.25)
        reg.histogram("h", (1.0, 2.0)).observe(1.5)
        rebuilt = MetricsRegistry.from_state(reg.dump())
        assert render_exposition(reg) == render_exposition(rebuilt)
        assert render_exposition(reg) == render_exposition(reg.dump())

    def test_unknown_dump_types_are_skipped_not_fatal(self):
        state = {"new.metric": {"type": "exotic", "value": 1}}
        assert render_exposition(state) == "\n"

    def test_empty_registry_renders_empty_document(self):
        assert render_exposition(MetricsRegistry()) == "\n"


class TestSnapshotCumulativeBuckets:
    def test_cumulative_counts_method(self):
        h = Histogram("h", (10, 20, 40))
        for v in (0, 10, 11, 20, 21, 40, 41, 1000):
            h.observe(v)
        assert h.counts == [2, 2, 2, 2]  # storage stays non-cumulative
        assert h.cumulative_counts() == [2, 4, 6, 8]
        assert h.cumulative_counts()[-1] == h.count

    def test_snapshot_carries_cumulative_expansion(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (100, 200))
        h.observe(50)
        h.observe(250)
        snap = reg.snapshot()
        # The non-cumulative keys are unchanged (pinned above)...
        assert snap["lat.le_100"] == 1 and snap["lat.le_inf"] == 1
        # ...and the cumulative expansion sits alongside them.
        assert snap["lat.le_cum_100"] == 1
        assert snap["lat.le_cum_200"] == 1
        assert snap["lat.le_cum_inf"] == snap["lat.count"] == 2

    def test_snapshot_roundtrips_through_dump(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        h = reg.histogram("lat", (100, 200))
        for v in (50, 150, 250):
            h.observe(v)
        assert MetricsRegistry.from_state(reg.dump()).snapshot() \
            == reg.snapshot()


class TestCorrelatedSinks:
    def _event(self):
        event = HarnessSpan(name="GDL/libra", wall_start_s=10.0,
                            wall_dur_s=0.5, status="ok", attempts=1)
        event.seq = 1
        return event

    def test_jsonl_sink_stamps_extra_fields(self):
        stream = io.StringIO()
        sink = JsonlSink(stream, extra={"job_id": "j1",
                                        "worker_id": "w1"})
        sink.handle(self._event())
        record = json.loads(stream.getvalue())
        assert record["type"] == "HarnessSpan"
        assert record["job_id"] == "j1"
        assert record["worker_id"] == "w1"
        assert record["name"] == "GDL/libra"

    def test_event_fields_win_over_extra_on_clash(self):
        stream = io.StringIO()
        sink = JsonlSink(stream, extra={"name": "imposter"})
        sink.handle(self._event())
        assert json.loads(stream.getvalue())["name"] == "GDL/libra"

    def test_point_trace_sink_lazily_creates_file(self, tmp_path):
        path = tmp_path / "traces" / "p0.123.jsonl"
        sink = PointTraceSink(path, extra={"point_id": "p0"})
        assert not path.exists()  # nothing until the first event
        sink.handle(self._event())
        sink.close()
        record = json.loads(path.read_text().splitlines()[0])
        assert record["point_id"] == "p0"
        assert record["type"] == "HarnessSpan"

    def test_point_trace_sink_degrades_never_raises(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        sink = PointTraceSink(blocker / "deeper" / "p.jsonl")
        sink.handle(self._event())  # must swallow the OSError
        assert sink.degraded
        sink.handle(self._event())  # and stay silent afterwards
        sink.close()


class TestFleetTraceMerge:
    def _job_dir(self, tmp_path):
        job_dir = tmp_path / "job"
        traces = job_dir / "traces"
        traces.mkdir(parents=True)
        span = {"type": "HarnessSpan", "name": "tri.p0",
                "wall_start_s": 100.0, "wall_dur_s": 2.0,
                "status": "ok", "attempts": 1,
                "job_id": "j1", "worker_id": "w1", "point_id": "p0"}
        (traces / "p0.11.jsonl").write_text(json.dumps(span) + "\n")
        events = [
            {"event": "job_submitted", "ts": 99.0, "job_id": "j1"},
            {"event": "point_claimed", "ts": 100.0, "owner": "w1",
             "point_id": "p0"},
            {"event": "point_done", "ts": 102.0, "owner": "w1",
             "point_id": "p0", "elapsed_s": 2.0},
            {"event": "point_claimed", "ts": 100.5, "owner": "w2",
             "point_id": "p1"},
            # w2's stream was lost: only the completion event remains.
            {"event": "point_done", "ts": 103.5, "owner": "w2",
             "point_id": "p1", "elapsed_s": 3.0, "attempts": 2},
            {"event": "job_done", "ts": 104.0, "job_id": "j1"},
        ]
        (job_dir / "events.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in events))
        return job_dir

    def test_one_pid_per_worker_sorted_by_id(self, tmp_path):
        events = fleet_trace_events(self._job_dir(tmp_path))
        names = {e["pid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names[PID_JOB] == "job"
        assert names[PID_WORKER0] == "worker w1"
        assert names[PID_WORKER0 + 1] == "worker w2"

    def test_spans_carry_correlation_args(self, tmp_path):
        events = fleet_trace_events(self._job_dir(tmp_path))
        spans = {e["args"]["point_id"]: e for e in events
                 if e["ph"] == "X"}
        real = spans["p0"]
        assert real["pid"] == PID_WORKER0
        assert real["dur"] == 2_000_000  # 2 s in microseconds
        assert real["args"]["job_id"] == "j1"
        assert real["args"]["status"] == "ok"
        # The lost stream is synthesized back from point_done.
        synth = spans["p1"]
        assert synth["pid"] == PID_WORKER0 + 1
        assert synth["args"]["synthesized_from"] == "point_done"
        assert synth["dur"] == 3_000_000
        assert synth["args"]["attempts"] == 2

    def test_timeline_is_relative_wall_clock_microseconds(self, tmp_path):
        events = fleet_trace_events(self._job_dir(tmp_path))
        timed = [e for e in events if e["ph"] != "M"]
        assert min(e["ts"] for e in timed) == 0  # job_submitted at t0
        claimed = [e for e in timed if e["name"] == "point_claimed"]
        assert {e["ts"] for e in claimed} == {1_000_000, 1_500_000}
        lifecycle = [e for e in timed if e["pid"] == PID_JOB]
        assert [e["name"] for e in lifecycle] \
            == ["job_submitted", "job_done"]

    def test_document_shape_and_empty_job_dir(self, tmp_path):
        doc = fleet_chrome_trace(self._job_dir(tmp_path))
        doc = json.loads(json.dumps(doc))  # JSON-serializable
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["ts_unit"].startswith("wall-clock")
        empty = tmp_path / "empty"
        empty.mkdir()
        assert fleet_trace_events(empty) == []
