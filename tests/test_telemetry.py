"""Tests for the telemetry subsystem (events, metrics, exporters).

The two load-bearing guarantees:

* **disabled = free and inert** — a disabled hub swallows nothing and
  touches nothing;
* **enabled = observation only** — a run with telemetry on is
  bit-identical to the same run with it off.
"""

import json

import pytest

from repro.config import libra_config
from repro.core import LibraScheduler
from repro.gpu import GPUSimulator
from repro.telemetry import (DRAMSample, FSMState, FSMTransition, HUB,
                             HarnessSpan, Histogram, MetricsRegistry,
                             PhaseBegin, PhaseEnd, RecordingSink,
                             TileDispatch, TileRetire, chrome_trace,
                             telemetry_session)
from repro.workloads import TraceBuilder, make_scene_builder

WIDTH, HEIGHT, TILE = 256, 128, 32


def _small_traces(benchmark="GDL", frames=2):
    builder = make_scene_builder(benchmark, WIDTH, HEIGHT)
    return TraceBuilder(builder, WIDTH, HEIGHT, TILE).build_many(frames)


def _run_libra(traces):
    cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
    sim = GPUSimulator(cfg, scheduler=LibraScheduler(cfg.scheduler),
                       name="libra")
    return sim.run(traces)


def _fingerprint(result):
    """Everything observable about a run, hashable for comparison."""
    return (
        result.total_cycles,
        result.raster_dram_accesses,
        tuple((f.frame_index, f.geometry_cycles, f.raster_cycles,
               f.order, f.supertile_size,
               round(f.texture_hit_ratio, 12), f.raster_dram_accesses,
               tuple(sorted(f.per_tile_dram.items())))
              for f in result.frames),
    )


class TestHubLifecycle:
    def test_disabled_by_default_and_emits_nothing(self):
        assert HUB.enabled is False
        sink = RecordingSink()
        # The instrumentation contract: emit() is only reached behind an
        # ``if HUB.enabled:`` guard, so a disabled hub simply never sees
        # events.  Simulate a full run and assert nothing was recorded.
        HUB.add_sink(sink)
        try:
            _run_libra(_small_traces(frames=1))
        finally:
            HUB.remove_sink(sink)
        assert sink.events == []

    def test_session_restores_prior_state(self):
        assert HUB.enabled is False
        with telemetry_session(RecordingSink()):
            assert HUB.enabled is True
        assert HUB.enabled is False
        assert HUB.sinks == []

    def test_seq_is_strictly_increasing_emit_order(self):
        sink = RecordingSink()
        with telemetry_session(sink):
            HUB.emit(PhaseBegin(name="a", ts=5))
            HUB.emit(PhaseEnd(name="a", ts=9))
            HUB.emit(PhaseBegin(name="b", ts=9))
        seqs = [e.seq for e in sink.events]
        assert len(seqs) == 3
        assert all(b > a for a, b in zip(seqs, seqs[1:]))

    def test_run_event_stream_is_ordered(self):
        sink = RecordingSink()
        with telemetry_session(sink):
            _run_libra(_small_traces(frames=2))
        assert len(sink.events) > 0
        seqs = [e.seq for e in sink.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # Phases nest: the first event is the run-begin, the last the
        # run-end, and every frame emits geometry before raster.
        assert isinstance(sink.events[0], PhaseBegin)
        assert sink.events[0].name.startswith("run:")
        assert isinstance(sink.events[-1], PhaseEnd)
        names = [e.name for e in sink.events if isinstance(e, PhaseBegin)]
        assert names.count("geometry") == 2
        assert names.count("raster") == 2


class TestParity:
    def test_enabled_run_is_bit_identical_to_disabled(self):
        traces = _small_traces(frames=2)
        plain = _fingerprint(_run_libra(traces))
        with telemetry_session(RecordingSink()):
            observed = _fingerprint(_run_libra(traces))
        again = _fingerprint(_run_libra(traces))
        assert observed == plain
        assert again == plain  # and the hub left no residue behind


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        reg.gauge("c").set(2.5)
        assert reg.snapshot() == {"a.b": 5, "c": 2.5}
        with pytest.raises(ValueError):
            reg.counter("a.b").inc(-1)

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_histogram_bucket_edges(self):
        h = Histogram("h", (10, 20, 40))
        # Inclusive upper bounds: 10 -> first bucket, 11 -> second,
        # 40 -> last bounded bucket, 41 -> overflow.
        for v in (0, 10, 11, 20, 21, 40, 41, 1000):
            h.observe(v)
        assert h.counts == [2, 2, 2, 2]
        assert h.count == 8
        assert h.min_seen == 0 and h.max_seen == 1000
        assert h.mean == pytest.approx(sum((0, 10, 11, 20, 21, 40, 41,
                                            1000)) / 8)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (10, 10, 20))
        with pytest.raises(ValueError):
            Histogram("h", (20, 10))

    def test_histogram_snapshot_shape(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (100, 200))
        h.observe(50)
        h.observe(250)
        snap = reg.snapshot()
        assert snap["lat.count"] == 2
        assert snap["lat.sum"] == 300
        assert snap["lat.le_100"] == 1
        assert snap["lat.le_200"] == 0
        assert snap["lat.le_inf"] == 1

    def test_reset_keeps_cached_instruments_live(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")
        counter.inc(3)
        reg.reset()
        assert reg.snapshot()["n"] == 0
        counter.inc()  # the cached reference still feeds the registry
        assert reg.snapshot()["n"] == 1

    def test_width_limited_counter_saturates(self):
        # The paper's Section III-E stat-buffer widths: 16-bit access
        # and 24-bit instruction fields saturate instead of wrapping.
        reg = MetricsRegistry()
        access = reg.counter("st.accesses", width_bits=16)
        access.inc((1 << 16) - 2)
        assert not access.saturated
        access.inc(5)  # would cross the ceiling
        assert access.value == (1 << 16) - 1
        assert access.saturated
        access.inc(1000)  # stays pinned, never wraps
        assert access.value == (1 << 16) - 1
        instr = reg.counter("st.instructions", width_bits=24)
        instr.inc(1 << 30)
        assert instr.value == (1 << 24) - 1

    def test_counter_width_fixed_at_creation(self):
        reg = MetricsRegistry()
        c = reg.counter("n", width_bits=8)
        assert reg.counter("n", width_bits=32) is c  # width ignored
        c.inc(10_000)
        assert c.value == 255
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad", width_bits=0)

    def test_histogram_boundary_values_merge_consistently(self):
        # Observations exactly on bucket bounds must land in the same
        # bucket whether observed directly or folded in via merge.
        a = Histogram("h", (10, 20, 40))
        b = Histogram("h", (10, 20, 40))
        for v in (10, 20, 40):
            a.observe(v)
            b.observe(v)
        a.merge(b)
        assert a.counts == [2, 2, 2, 0]
        assert a.count == 6
        assert a.total == 140
        assert a.min_seen == 10 and a.max_seen == 40

    def test_histogram_merge_rejects_bucket_mismatch(self):
        a = Histogram("h", (10, 20))
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(Histogram("h", (10, 30)))

    def test_dump_merge_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.counter("w", width_bits=16).inc(70_000)  # saturated
        reg.gauge("g").set(1.25)
        h = reg.histogram("lat", (100, 200))
        h.observe(100)
        h.observe(250)
        rebuilt = MetricsRegistry.from_state(reg.dump())
        assert rebuilt.snapshot() == reg.snapshot()
        # The width survives the trip: merging more keeps saturating.
        rebuilt.counter("w").inc(1)
        assert rebuilt.snapshot()["w"] == (1 << 16) - 1

    def test_merge_adds_counters_and_histograms(self):
        a = MetricsRegistry()
        a.counter("dram.reads").inc(10)
        a.histogram("lat", (100,)).observe(50)
        a.gauge("ratio").set(0.5)
        b = MetricsRegistry()
        b.counter("dram.reads").inc(32)
        b.histogram("lat", (100,)).observe(150)
        b.gauge("ratio").set(0.9)
        a.merge(b)
        snap = a.snapshot()
        assert snap["dram.reads"] == 42
        assert snap["lat.count"] == 2
        assert snap["lat.le_100"] == 1
        assert snap["lat.le_inf"] == 1
        assert snap["ratio"] == 0.9  # last write wins

    def test_merge_rejects_unknown_state_type(self):
        with pytest.raises(ValueError, match="unknown state type"):
            MetricsRegistry().merge({"x": {"type": "exotic", "value": 1}})

    def test_run_populates_expected_names(self):
        with telemetry_session(RecordingSink()):
            _run_libra(_small_traces(frames=2))
            snap = HUB.metrics.snapshot()
        assert snap["frames"] == 2
        assert snap["ru0.tiles_retired"] > 0
        assert snap["ru0.tile_latency_cycles.count"] > 0
        assert snap["dram.reads"] > 0
        assert 0.0 <= snap["l1tex.hit_ratio"] <= 1.0
        assert snap["l2.accesses"] > 0


class TestChromeTrace:
    def _events(self):
        events = [
            PhaseBegin(name="raster", ts=0, frame=0),
            TileDispatch(ru=0, tile=(1, 2), ts=0),
            TileRetire(ru=0, tile=(1, 2), ts=400, start_ts=0,
                       dram_lines=7, instructions=64),
            FSMTransition(machine="order", old="zorder",
                          new="temperature"),
            DRAMSample(ts=1000, requests=12, utilization=0.4,
                       latency_cycles=150.0),
            PhaseEnd(name="raster", ts=1200, frame=0),
            HarnessSpan(name="GDL/libra", wall_start_s=10.0,
                        wall_dur_s=0.5, status="ok", attempts=1),
        ]
        for i, event in enumerate(events):
            event.seq = i + 1
        return events

    def test_document_schema(self):
        doc = chrome_trace(self._events(), metrics={"frames": 1})
        # Round-trip through JSON: must serialize and keep its shape.
        doc = json.loads(json.dumps(doc))
        assert isinstance(doc["traceEvents"], list)
        for entry in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(entry)
            assert entry["ph"] == "M" or isinstance(entry["ts"], int)
            if entry["ph"] == "X":
                assert entry["dur"] >= 1
        assert doc["otherData"]["metrics"] == {"frames": 1}

    def test_track_mapping(self):
        events = chrome_trace(self._events())["traceEvents"]
        by_ph = {}
        for entry in events:
            by_ph.setdefault(entry["ph"], []).append(entry)
        # Tile span on the RU process, harness span on the harness one.
        pids = {e["pid"] for e in by_ph["X"]}
        assert 100 in pids and 999 in pids
        assert {e["pid"] for e in by_ph["B"]} == {0}
        assert any(e["name"] == "dram.bandwidth" for e in by_ph["C"])
        assert any(e["name"].startswith("fsm:") for e in by_ph["i"])
        names = {e["args"]["name"] for e in by_ph["M"]
                 if e["name"] == "process_name"}
        assert {"sim", "RU 0", "harness"} <= names

    def test_missing_ts_reuses_last_seen(self):
        events = chrome_trace(self._events())["traceEvents"]
        fsm = next(e for e in events if e["name"].startswith("fsm:"))
        assert fsm["ts"] == 400  # the TileRetire before it
        assert fsm["args"]["ts_inferred"] is True

    def test_process_and_thread_metadata(self):
        events = chrome_trace(self._events())["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        by_pid = {}
        for entry in meta:
            by_pid.setdefault(entry["pid"], {})[entry["name"]] = \
                entry["args"]
        for pid in (0, 100, 999):
            assert by_pid[pid]["process_name"]["name"]
            assert by_pid[pid]["process_sort_index"]["sort_index"] == pid
        # The thread label names the time domain of each track.
        assert by_pid[0]["thread_name"]["name"] == "simulated cycles"
        assert by_pid[999]["thread_name"]["name"] == "wall clock"

    def test_ts_units_recorded_in_other_data(self):
        doc = chrome_trace(self._events())
        units = doc["otherData"]["ts_units"]
        assert units["harness"] == "wall-clock microseconds"
        assert units["sim"] == units["ru"] == "simulated GPU cycles"
        # The legacy single-unit key stays for older readers.
        assert doc["otherData"]["ts_unit"] == "simulated GPU cycles"

    def test_tsless_frame_event_clamped_into_its_frame(self):
        # Frame 0 runs [0, 1000], frame 1 runs [5000, 6000].  An FSM
        # snapshot for frame 1 emitted before frame 1's timed phases
        # (so last_ts is still 1000) must not land at the end of frame
        # 0 — it is clamped forward to frame 1's begin.
        events = [
            PhaseBegin(name="frame", ts=0, frame=0),
            PhaseEnd(name="frame", ts=1000, frame=0),
            FSMState(machine="order", state="zorder", frame=1),
            PhaseBegin(name="frame", ts=5000, frame=1),
            PhaseEnd(name="frame", ts=6000, frame=1),
        ]
        for i, event in enumerate(events):
            event.seq = i + 1
        trace = chrome_trace(events)["traceEvents"]
        fsm = next(e for e in trace if e["name"].startswith("fsm:"))
        assert fsm["ts"] == 5000
        assert fsm["args"]["ts_inferred"] is True

    def test_tsless_frame_event_clamped_backwards(self):
        # Symmetrically: a frame-0 instant emitted after a later
        # timestamp was seen clamps back into frame 0's window.
        events = [
            PhaseBegin(name="frame", ts=0, frame=0),
            PhaseEnd(name="frame", ts=1000, frame=0),
            PhaseBegin(name="frame", ts=5000, frame=1),
            FSMState(machine="order", state="zorder", frame=0),
            PhaseEnd(name="frame", ts=6000, frame=1),
        ]
        for i, event in enumerate(events):
            event.seq = i + 1
        trace = chrome_trace(events)["traceEvents"]
        fsm = next(e for e in trace if e["name"].startswith("fsm:"))
        assert fsm["ts"] == 1000
        assert fsm["args"]["ts_inferred"] is True


class TestCliTrace:
    def test_trace_tri_overlap_acceptance(self, capsys, tmp_path):
        from repro.cli import main
        out = str(tmp_path / "trace.json")
        code = main(["--width", "256", "--height", "128",
                     "trace", "tri_overlap", "--frames", "2",
                     "--out", out])
        assert code == 0
        doc = json.loads(open(out).read())
        events = doc["traceEvents"]
        assert events
        # Per-RU tile duration events, FSM instants, DRAM counter track.
        assert any(e["ph"] == "X" and e["pid"] >= 100 and e["pid"] < 999
                   for e in events)
        assert any(e["ph"] == "i" and e["name"].startswith("fsm:")
                   for e in events)
        assert any(e["ph"] == "C" and e["name"] == "dram.bandwidth"
                   for e in events)
        assert capsys.readouterr().out.startswith("wrote ")

    def test_trace_frames_format_unchanged(self, capsys, tmp_path):
        from repro.cli import main
        from repro.workloads import load_traces
        out = str(tmp_path / "t.jsonl.gz")
        code = main(["--width", "256", "--height", "128",
                     "trace", "GDL", "--frames", "2", "--out", out])
        assert code == 0
        assert len(load_traces(out)) == 2
