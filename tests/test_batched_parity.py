"""Parity suite: the batched hot path versus the scalar golden path.

PR 2 rewrote the per-line memory loops (``Cache.lookup_batch``, the
fused texture-stream loop of :class:`TimingRasterUnit`, the Geometry
vertex stream) for speed while keeping the scalar implementations as the
golden reference (``batched=False``).  These tests pin the contract:
**bit-identical** LRU state, hit/miss/eviction/writeback counters, DRAM
request interleaving and interval series, at every level.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import CacheConfig, RasterUnitConfig, small_config
from repro.core import (LibraScheduler, TemperatureScheduler,
                        ZOrderScheduler)
from repro.gpu import GPUSimulator
from repro.gpu.frame import FrameDriver
from repro.memory.cache import Cache
from repro.perf.kernels import run_kernel
from repro.telemetry import HUB, RecordingSink
from repro.workloads.scene import SceneBuilder
from repro.workloads.traces import TraceBuilder

from faults import tiny_builder, tiny_params

# Tiny geometry: 4 sets x 2 ways so random streams of a few dozen lines
# exercise eviction and writeback constantly.
TINY = CacheConfig(size_bytes=8 * 32, ways=2, line_bytes=32)

line_streams = st.lists(
    st.tuples(st.integers(0, 31), st.booleans()), max_size=200)


def _state(cache: Cache):
    s = cache.stats
    return (
        (s.accesses, s.hits, s.misses, s.evictions, s.writebacks),
        cache.resident_lines(),
        sorted(cache._dirty),
        list(cache.pending_writebacks),
    )


class TestLookupBatchProperty:
    """``lookup_batch`` is observably identical to scalar ``lookup``."""

    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream=line_streams)
    def test_batch_equals_scalar_sequence(self, stream):
        scalar = Cache(TINY, name="scalar")
        batched = Cache(TINY, name="batched")
        hits_scalar = sum(scalar.lookup(line, write=w)
                          for line, w in stream)
        # Group the stream into per-write-flag runs, as callers do.
        record = []
        hits_batched = 0
        run, flag = [], None
        for line, w in stream + [(None, None)]:
            if w != flag and run:
                hits_batched += batched.lookup_batch(
                    run, write=flag, miss_record=record)
                run = []
            flag = w
            if line is not None:
                run.append(line)
        assert hits_batched == hits_scalar
        assert _state(batched) == _state(scalar)
        # The miss record replays the scalar miss/writeback interleaving:
        # misses in stream order, victims in pending_writebacks order.
        assert len(record) == scalar.stats.misses
        assert [v for _, v in record if v is not None] \
            == scalar.pending_writebacks

    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(streams=st.lists(st.lists(st.integers(0, 31), max_size=40),
                            max_size=8))
    def test_state_carries_across_batches(self, streams):
        scalar = Cache(TINY)
        batched = Cache(TINY)
        for stream in streams:
            for line in stream:
                scalar.lookup(line, write=True)
            batched.lookup_batch(stream, write=True)
            assert _state(batched) == _state(scalar)

    def test_empty_batch_is_a_noop(self):
        cache = Cache(TINY)
        assert cache.lookup_batch([]) == 0
        assert cache.stats.accesses == 0

    def test_duplicate_lines_in_one_batch(self):
        scalar = Cache(TINY)
        batched = Cache(TINY)
        stream = [0, 0, 8, 16, 0, 8, 24, 0]
        for line in stream:
            scalar.lookup(line)
        batched.lookup_batch(stream)
        assert _state(batched) == _state(scalar)


def _frame_key(frame):
    return (
        frame.geometry_cycles, frame.raster_cycles, frame.order,
        frame.supertile_size, frame.texture_hit_ratio,
        frame.raster_dram_accesses, frame.per_tile_dram,
        frame.per_tile_instructions, frame.dram_interval_requests,
        frame.tiles_completed,
        (frame.texture_l1_stats.accesses, frame.texture_l1_stats.hits,
         frame.texture_l1_stats.misses, frame.texture_l1_stats.evictions,
         frame.texture_l1_stats.writebacks),
        (frame.energy_counts.l1_accesses, frame.energy_counts.l2_accesses,
         frame.energy_counts.dram_reads, frame.energy_counts.dram_writes,
         frame.energy_counts.dram_activations),
    )


def _parity_config():
    return small_config(screen_width=128, screen_height=64, tile_size=32,
                        num_raster_units=2,
                        raster_unit=RasterUnitConfig(num_cores=4))


def _run(scheduler_factory, batched, traces, ideal_memory=False):
    config = _parity_config()
    sim = GPUSimulator(config, scheduler=scheduler_factory(config),
                       ideal_memory=ideal_memory, batched=batched,
                       name="parity")
    return sim.run(traces)


SCHEDULERS = {
    "zorder": lambda config: ZOrderScheduler(),
    "temperature": lambda config: TemperatureScheduler(4),
    "libra": lambda config: LibraScheduler(config.scheduler),
}


class TestFullSimulationParity:
    """Whole-run golden comparison on seeded multi-frame workloads."""

    @pytest.fixture(scope="class")
    def traces(self):
        return tiny_builder().build_many(4)

    @pytest.mark.parametrize("kind", sorted(SCHEDULERS))
    def test_batched_matches_scalar(self, traces, kind):
        fast = _run(SCHEDULERS[kind], True, traces)
        golden = _run(SCHEDULERS[kind], False, traces)
        for fa, fb in zip(fast.frames, golden.frames):
            assert _frame_key(fa) == _frame_key(fb)
            assert fa.mean_texture_latency \
                == pytest.approx(fb.mean_texture_latency)
        assert fast.total_cycles == golden.total_cycles

    def test_ideal_memory_parity(self, traces):
        fast = _run(SCHEDULERS["zorder"], True, traces,
                    ideal_memory=True)
        golden = _run(SCHEDULERS["zorder"], False, traces,
                      ideal_memory=True)
        assert [f.raster_cycles for f in fast.frames] \
            == [f.raster_cycles for f in golden.frames]
        assert fast.mean_texture_hit_ratio \
            == golden.mean_texture_hit_ratio


def _random_scene_traces(seed: int, frames: int = 2):
    """Traces of a randomized scene (content varies with the seed)."""
    params = tiny_params(seed=seed, roaming_sprites=2 + seed % 4,
                         hud_elements=seed % 3,
                         scroll_speed=4.0 + 3.0 * (seed % 5))
    builder = TraceBuilder(SceneBuilder(params, 128, 64), 128, 64, 32)
    return builder.build_many(frames)


#: Every config-kind family, including the alternative schedulers.
ALL_KINDS = ("baseline", "ptr", "libra", "temperature", "supertile")


class TestRandomizedSceneKindParity:
    """Randomized scenes x config kinds x telemetry: bit-identical.

    The tentpole contract: for every scheduler family the simulator
    ships — not just the three of the curated perf set — and with the
    telemetry hub on or off, the batched structure-of-arrays path must
    reproduce the scalar oracle's metrics bit for bit.
    """

    @pytest.fixture(scope="class")
    def scene_traces(self):
        return {seed: _random_scene_traces(seed) for seed in (3, 11)}

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_kind_parity_on_random_scene(self, scene_traces, seed, kind):
        traces = scene_traces[seed]
        fast = run_kernel(kind, traces, 128, 64, batched=True)
        golden = run_kernel(kind, traces, 128, 64, batched=False)
        assert fast.total_cycles == golden.total_cycles
        assert fast.raster_dram_accesses == golden.raster_dram_accesses
        assert fast.mean_texture_hit_ratio \
            == golden.mean_texture_hit_ratio
        for fa, fb in zip(fast.frames, golden.frames):
            assert _frame_key(fa) == _frame_key(fb)

    @pytest.mark.parametrize("kind", ["libra", "temperature"])
    def test_parity_with_telemetry_enabled(self, scene_traces, kind):
        traces = scene_traces[3]
        results = []
        for batched in (True, False):
            sink = RecordingSink()
            HUB.enable(sink)
            try:
                results.append(run_kernel(kind, traces, 128, 64,
                                          batched=batched))
            finally:
                HUB.disable()
        fast, golden = results
        assert fast.total_cycles == golden.total_cycles
        assert fast.raster_dram_accesses == golden.raster_dram_accesses
        for fa, fb in zip(fast.frames, golden.frames):
            assert _frame_key(fa) == _frame_key(fb)

    def test_telemetry_does_not_perturb_metrics(self, scene_traces):
        traces = scene_traces[11]
        quiet = run_kernel("libra", traces, 128, 64)
        HUB.enable(RecordingSink())
        try:
            loud = run_kernel("libra", traces, 128, 64)
        finally:
            HUB.disable()
        assert (quiet.total_cycles, quiet.raster_dram_accesses) \
            == (loud.total_cycles, loud.raster_dram_accesses)


class TestGeometryIntervalDeterminism:
    """The Geometry phase closes a fixed interval count per frame.

    Regression test for the pre-PR2 bug where a vertex stream that did
    not divide evenly into interval-sized chunks could close a
    different number of DRAM intervals than ``geometry_cycles //
    interval_cycles``, making the interval series depend on the chunk
    remainder.
    """

    def _driver(self, batched):
        config = _parity_config()
        return FrameDriver(config, ZOrderScheduler(), batched=batched)

    @pytest.mark.parametrize("batched", [True, False])
    @pytest.mark.parametrize("num_lines", [0, 1, 7, 10, 64])
    def test_interval_count_is_exact(self, batched, num_lines):
        driver = self._driver(batched)
        interval = driver.config.interval_cycles
        trace = tiny_builder().build_many(1)[0]
        trace.vertex_lines = list(range(num_lines))
        trace.geometry_cycles = int(3.7 * interval)  # does not divide
        before = len(driver.shared.dram.stats.interval_requests)
        driver._run_geometry_phase(trace)
        closed = (len(driver.shared.dram.stats.interval_requests)
                  - before)
        assert closed == 3
        assert driver.vertex_cache.stats.accesses == num_lines

    @pytest.mark.parametrize("batched", [True, False])
    def test_short_phase_closes_one_interval(self, batched):
        driver = self._driver(batched)
        trace = tiny_builder().build_many(1)[0]
        trace.vertex_lines = [1, 2, 3]
        trace.geometry_cycles = driver.config.interval_cycles // 2
        driver._run_geometry_phase(trace)
        assert len(driver.shared.dram.stats.interval_requests) == 1

    def test_batched_and_scalar_emit_identical_series(self):
        results = []
        for batched in (True, False):
            driver = self._driver(batched)
            trace = tiny_builder().build_many(1)[0]
            trace.geometry_cycles = int(2.3
                                        * driver.config.interval_cycles)
            driver._run_geometry_phase(trace)
            results.append((
                list(driver.shared.dram.stats.interval_requests),
                driver.vertex_cache.resident_lines(),
                driver.shared.l2.resident_lines(),
            ))
        assert results[0] == results[1]
