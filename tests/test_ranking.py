"""Tests for temperature ranking and its hardware latency estimate."""

from hypothesis import given, strategies as st

from repro.core.ranking import (CYCLES_PER_COMPARISON, hides_under_geometry,
                                rank_by_temperature, ranking_cycles)


class TestRanking:
    def test_hottest_first(self):
        assert rank_by_temperature([0.1, 0.9, 0.5]) == [1, 2, 0]

    def test_ties_break_by_id(self):
        assert rank_by_temperature([0.5, 0.5, 0.5]) == [0, 1, 2]

    def test_empty(self):
        assert rank_by_temperature([]) == []

    @given(st.lists(st.floats(0, 10, allow_nan=False), max_size=100))
    def test_is_permutation_and_sorted(self, temps):
        ranked = rank_by_temperature(temps)
        assert sorted(ranked) == list(range(len(temps)))
        values = [temps[i] for i in ranked]
        assert values == sorted(values, reverse=True)


class TestLatencyEstimate:
    def test_paper_example_510_entries(self):
        # Section III-E: 4587 comparisons, 3 cycles each -> 13761 cycles.
        assert ranking_cycles(510) == 13761
        assert CYCLES_PER_COMPARISON == 3

    def test_trivial_sizes_free(self):
        assert ranking_cycles(0) == 0
        assert ranking_cycles(1) == 0

    def test_monotonic_in_n(self):
        assert ranking_cycles(100) < ranking_cycles(200) < ranking_cycles(510)

    def test_hides_under_paper_geometry_budget(self):
        # The paper measures ~270k geometry cycles per frame on average;
        # the ranking (13761) must hide beneath it.
        assert hides_under_geometry(510, 270_000)

    def test_does_not_hide_under_tiny_budget(self):
        assert not hides_under_geometry(510, 1_000)
