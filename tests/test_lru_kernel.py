"""ArrayCache (vectorized LRU kernel) versus the dict-based Cache.

The contract under test is the parity-oracle contract of
``docs/api.md``: :class:`repro.memory.lru_kernel.ArrayCache` must be
*observably bit-identical* to :class:`repro.memory.cache.Cache` — same
hit counts, same eviction victims in the same order, same
``pending_writebacks`` and ``miss_record``, same ``resident_lines()``
LRU order — whether a batch runs through the vectorized kernel or
falls back to the exact per-line loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import CacheConfig
from repro.errors import ConfigValidationError
from repro.memory.cache import Cache
from repro.memory.lru_kernel import ArrayCache

# 4 sets x 2 ways of 32-byte lines: tiny enough that short random
# streams constantly evict, write back, and violate the kernel's
# safety conditions (exercising the fallback).
TINY = CacheConfig(size_bytes=8 * 32, ways=2, line_bytes=32)
# 16 sets x 4 ways: roomy enough that window streams stay kernel-safe.
ROOMY = CacheConfig(size_bytes=64 * 32, ways=4, line_bytes=32)

line_streams = st.lists(
    st.tuples(st.integers(0, 31), st.booleans()), max_size=120)


def _state(cache):
    s = cache.stats
    return (
        (s.accesses, s.hits, s.misses, s.evictions, s.writebacks),
        cache.resident_lines(),
        sorted(cache._dirty),
        list(cache.pending_writebacks),
    )


def _run_batches(cache, batches, write=False):
    record = []
    hits = 0
    for batch in batches:
        hits += cache.lookup_batch(batch, write=write, miss_record=record)
    return hits, record


class TestArrayCacheProperty:
    """Randomized parity, vectorized kernel forced on (min_batch=0)."""

    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream=line_streams, batch_len=st.integers(1, 40))
    def test_matches_dict_cache(self, stream, batch_len):
        ref = Cache(TINY, name="ref")
        arr = ArrayCache(TINY, name="arr", min_batch=0)
        rec_ref, rec_arr = [], []
        hits_ref = hits_arr = 0
        for start in range(0, len(stream), batch_len):
            chunk = stream[start:start + batch_len]
            for write in (False, True):
                lines = [line for line, w in chunk if w is write]
                if not lines:
                    continue
                hits_ref += ref.lookup_batch(lines, write=write,
                                             miss_record=rec_ref)
                hits_arr += arr.lookup_batch(lines, write=write,
                                             miss_record=rec_arr)
        assert hits_arr == hits_ref
        assert rec_arr == rec_ref
        assert _state(arr) == _state(ref)

    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream=st.lists(st.integers(0, 255), max_size=120),
           write=st.booleans())
    def test_single_batch_roomy(self, stream, write):
        ref = Cache(ROOMY, name="ref")
        arr = ArrayCache(ROOMY, name="arr", min_batch=0)
        hr, rr = _run_batches(ref, [stream], write)
        ha, ra = _run_batches(arr, [stream], write)
        assert (ha, ra) == (hr, rr)
        assert _state(arr) == _state(ref)


class TestVectorizedPathExplicitly:
    """Streams built to satisfy the safety conditions take the kernel."""

    def _windows(self, chunks=12, window=32, stride=24, reps=3):
        rng = np.random.default_rng(11)
        batches = []
        for i in range(chunks):
            w = np.arange(i * stride, i * stride + window, dtype=np.int64)
            lines = np.tile(w, reps)
            batches.append(lines[rng.permutation(len(lines))])
        return batches

    def test_kernel_used_and_identical(self, monkeypatch):
        ref = Cache(ROOMY, name="ref")
        arr = ArrayCache(ROOMY, name="arr", min_batch=1)
        outcomes = []
        original = ArrayCache._kernel

        def spy(self, seq, write, record):
            result = original(self, seq, write, record)
            outcomes.append(result is not None)
            return result

        monkeypatch.setattr(ArrayCache, "_kernel", spy)
        batches = self._windows()
        hr, rr = _run_batches(ref, [b.tolist() for b in batches],
                              write=True)
        ha, ra = _run_batches(arr, batches, write=True)
        assert outcomes and all(outcomes), \
            "window stream was expected to stay on the vectorized path"
        assert (ha, ra) == (hr, rr)
        assert _state(arr) == _state(ref)

    def test_unsafe_batch_falls_back_exactly(self):
        # 5 distinct lines of one set > 4 ways: set-safety fails, the
        # per-line loop must produce the dict cache's exact state.
        lines = [0, 16, 32, 48, 64, 0, 16]
        ref = Cache(ROOMY, name="ref")
        arr = ArrayCache(ROOMY, name="arr", min_batch=1)
        assert arr._kernel(lines, False, None) is None
        hr, rr = _run_batches(ref, [lines])
        ha, ra = _run_batches(arr, [lines])
        assert (ha, ra) == (hr, rr)
        assert _state(arr) == _state(ref)

    def test_victim_unsafe_batch_falls_back(self):
        # Fill set 0, age line 0, then batch [hit the LRU line, 4
        # misses of the same set]: the oldest resident is also a hit
        # candidate, so victim-safety must reject the batch.
        arr = ArrayCache(ROOMY, name="arr", min_batch=1)
        for line in (0, 16, 32, 48):
            arr.lookup(line)
        batch = [0, 64, 80, 96, 112]
        assert arr._kernel(batch, False, None) is None
        ref = Cache(ROOMY, name="ref")
        for line in (0, 16, 32, 48):
            ref.lookup(line)
        _run_batches(ref, [batch])
        _run_batches(arr, [batch])
        assert _state(arr) == _state(ref)


class TestArrayCacheSurface:
    """The non-batch public surface matches the dict cache."""

    def test_scalar_lookup_contains_flush(self):
        ref = Cache(TINY, name="ref")
        arr = ArrayCache(TINY, name="arr")
        for line in (1, 9, 17, 1, 25, 9):
            assert arr.lookup(line, write=True) \
                == ref.lookup(line, write=True)
        assert arr.contains(1) == ref.contains(1)
        assert arr.contains(17) == ref.contains(17)
        assert _state(arr) == _state(ref)
        assert arr.flush() == ref.flush()
        assert arr.resident_lines() == ref.resident_lines() == []

    def test_reset_clears_everything(self):
        arr = ArrayCache(TINY)
        arr.lookup_batch([1, 2, 3], write=True)
        arr.reset()
        assert _state(arr) == ((0, 0, 0, 0, 0), [], [], [])
        assert arr._clock == 0

    def test_ndarray_input_records_plain_ints(self):
        arr = ArrayCache(ROOMY, min_batch=1)
        record = []
        arr.lookup_batch(np.arange(8, dtype=np.int64) * 16,
                         miss_record=record)
        assert all(type(line) is int for line, _ in record)

    def test_negative_lines_rejected_by_kernel(self):
        arr = ArrayCache(ROOMY, min_batch=1)
        with pytest.raises(ConfigValidationError):
            arr.lookup_batch([3, -1, 5])

    def test_empty_batch_is_a_noop(self):
        arr = ArrayCache(TINY, min_batch=0)
        assert arr.lookup_batch([]) == 0
        assert arr.stats.accesses == 0
