"""Fault-injection suite: every layer degrades as specified, never crashes.

The contract under test (docs/robustness.md):

* a corrupted/truncated cache entry is *quarantined and rebuilt* —
  never served, never silently deleted;
* an interrupted write never leaves a partial file visible under the
  final cache-entry name;
* malformed trace files fail with :class:`TraceFormatError` naming the
  offending path;
* invalid traces/configs/scene parameters are rejected at the
  simulator's trust boundary;
* a supervised suite run with one failing benchmark still returns
  results for all the others, with the failure recorded.
"""

import os
import pickle

import pytest

from repro import cachefile, harness
from repro.errors import (BenchmarkTimeoutError, CacheCorruptionError,
                          ConfigValidationError, ReproError,
                          SimulationError, TraceFormatError)
from repro.config import RasterUnitConfig, SchedulerConfig, small_config
from repro.gpu.simulator import GPUSimulator
from repro.workloads import load_traces, save_traces
from repro.workloads.params import HotspotSpec
from repro.workloads.traces import TraceCache

from faults import (ExplodesMidPickle, ScriptedRunner, bit_flip,
                    skew_trace_version, sleepy_runner, tiny_builder,
                    tiny_params, truncate_file, valid_trace)


class TestTaxonomy:
    def test_all_errors_are_repro_errors(self):
        for exc in (CacheCorruptionError, TraceFormatError,
                    ConfigValidationError, BenchmarkTimeoutError,
                    SimulationError):
            assert issubclass(exc, ReproError)

    def test_compat_with_builtin_hierarchy(self):
        # Pre-taxonomy callers caught ValueError/TimeoutError; keep them
        # working.
        assert issubclass(TraceFormatError, ValueError)
        assert issubclass(ConfigValidationError, ValueError)
        assert issubclass(BenchmarkTimeoutError, TimeoutError)

    def test_transient_flags(self):
        assert CacheCorruptionError("x").transient
        assert not SimulationError("x").transient


class TestCacheCorruption:
    def cache_entry(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_build("k", tiny_builder(), 1)
        return cache, cache._path("k")

    def test_truncated_entry_quarantined_not_served(self, tmp_path, caplog):
        cache, path = self.cache_entry(tmp_path)
        truncate_file(path)
        with caplog.at_level("WARNING"):
            assert cache.get("k") is None
        assert not path.exists()
        assert any(".corrupt" in p.name for p in tmp_path.iterdir())
        assert "quarantine" in caplog.text

    def test_bit_flip_detected_by_checksum(self, tmp_path):
        cache, path = self.cache_entry(tmp_path)
        bit_flip(path)
        assert cache.get("k") is None

    def test_corrupt_entry_rebuilt(self, tmp_path):
        cache, path = self.cache_entry(tmp_path)
        truncate_file(path)
        rebuilt = cache.get_or_build("k", tiny_builder(), 1)
        assert len(rebuilt) == 1
        assert cache.get("k") is not None  # fresh valid entry on disk

    def test_legacy_unchecksummed_pickle_quarantined(self, tmp_path):
        cache = TraceCache(tmp_path)
        path = cache._path("k")
        with path.open("wb") as handle:  # pre-taxonomy format
            pickle.dump([valid_trace()], handle)
        assert cache.get("k") is None
        assert any(".corrupt" in p.name for p in tmp_path.iterdir())

    def test_quarantine_preserves_evidence(self, tmp_path):
        cache, path = self.cache_entry(tmp_path)
        original = path.read_bytes()
        bit_flip(path)
        damaged = path.read_bytes()
        cache.get("k")
        corrupt = [p for p in tmp_path.iterdir() if ".corrupt" in p.name]
        assert len(corrupt) == 1
        assert corrupt[0].read_bytes() == damaged != original


class TestInterruptedWrite:
    def test_no_partial_file_under_final_name(self, tmp_path):
        path = tmp_path / "entry.pkl"
        with pytest.raises(IOError):
            cachefile.write_cache(ExplodesMidPickle(), path)
        assert not path.exists()

    def test_interrupted_replace_keeps_old_entry(self, tmp_path,
                                                 monkeypatch):
        path = tmp_path / "entry.pkl"
        cachefile.write_cache("old", path)

        def exploding_replace(src, dst):
            raise OSError("injected: crash at rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            cachefile.write_cache("new", path)
        monkeypatch.undo()
        assert cachefile.read_cache(path) == "old"

    def test_no_temp_litter_after_failure(self, tmp_path):
        path = tmp_path / "entry.pkl"
        with pytest.raises(IOError):
            cachefile.write_cache(ExplodesMidPickle(), path)
        assert [p.name for p in tmp_path.iterdir()] == []


class TestTraceFileFaults:
    def save(self, tmp_path, name="t.jsonl"):
        path = tmp_path / name
        save_traces([valid_trace(0), valid_trace(1)], path)
        return path

    def test_truncated_gzip(self, tmp_path):
        path = self.save(tmp_path, "t.jsonl.gz")
        truncate_file(path, keep_fraction=0.6)
        with pytest.raises(TraceFormatError, match=str(path)):
            load_traces(path)

    def test_version_skew(self, tmp_path):
        path = self.save(tmp_path)
        skew_trace_version(path, version=999)
        with pytest.raises(TraceFormatError, match="version 999"):
            load_traces(path)

    def test_bad_json(self, tmp_path):
        path = self.save(tmp_path)
        path.write_text(path.read_text() + "\n{not json")
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            load_traces(path)

    def test_missing_keys(self, tmp_path):
        import json
        path = self.save(tmp_path)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        del records[0]["tiles_x"]
        path.write_text("\n".join(json.dumps(r) for r in records))
        with pytest.raises(TraceFormatError, match="tiles_x"):
            load_traces(path)


class TestTrustBoundaries:
    def sim(self):
        return GPUSimulator(small_config(
            num_raster_units=2, raster_unit=RasterUnitConfig(num_cores=2)))

    def test_valid_trace_accepted(self):
        result = self.sim().run([valid_trace()])
        assert result.num_frames == 1

    def test_out_of_grid_tile_rejected(self):
        trace = valid_trace()
        trace.workloads[(9, 9)] = trace.workloads[(0, 0)]
        with pytest.raises(TraceFormatError, match="outside"):
            self.sim().run([trace])

    def test_negative_counters_rejected(self):
        trace = valid_trace()
        trace.workloads[(0, 0)].fragments = -5
        with pytest.raises(TraceFormatError, match="negative"):
            self.sim().run([trace])

    def test_absurd_line_address_rejected(self):
        trace = valid_trace()
        trace.workloads[(0, 0)].texture_lines[1] = 1 << 60
        with pytest.raises(TraceFormatError, match="out of bounds"):
            self.sim().run([trace])

    def test_config_cross_field_rejected(self):
        cfg = small_config()
        cfg.scheduler = SchedulerConfig(initial_supertile_size=3)
        with pytest.raises(ConfigValidationError, match="supertile"):
            GPUSimulator(cfg).run([valid_trace()])

    def test_validation_can_be_bypassed(self):
        # Power users (and the perf-sensitive harness) may skip checks.
        trace = valid_trace()
        result = self.sim().run([trace], validate=False)
        assert result.num_frames == 1

    def test_nan_scene_parameter_rejected(self):
        with pytest.raises(ConfigValidationError, match="finite"):
            tiny_params(scroll_speed=float("nan"))

    def test_inf_hotspot_rejected(self):
        with pytest.raises(ConfigValidationError, match="finite"):
            HotspotSpec(center=(float("inf"), 0.5))

    def test_zero_area_sprites_rejected(self):
        with pytest.raises(ConfigValidationError, match="zero-area"):
            HotspotSpec(center=(0.5, 0.5), sprite_size=0.0)
        with pytest.raises(ConfigValidationError):
            tiny_params(roaming_size=(0.0, 0.0))


class TestRunSupervisor:
    def test_one_failure_does_not_sink_the_suite(self):
        runner = ScriptedRunner({"GDL": [SimulationError] * 5})
        report = harness.run_suite(["CCS", "GDL", "SuS"], frames=1,
                                   runner=runner, backoff_s=0.0)
        assert [o.benchmark for o in report.succeeded] == ["CCS", "SuS"]
        assert [o.benchmark for o in report.failed] == ["GDL"]
        assert report.failed[0].error_type == "SimulationError"
        assert set(report.summaries()) == {("CCS", "libra"),
                                           ("SuS", "libra")}

    def test_transient_fault_retried_with_success(self):
        runner = ScriptedRunner({"CCS": [CacheCorruptionError]})
        report = harness.run_suite(["CCS"], frames=1, runner=runner,
                                   max_attempts=3, backoff_s=0.0)
        assert report.succeeded and report.succeeded[0].attempts == 2

    def test_non_transient_fault_not_retried(self):
        runner = ScriptedRunner({"CCS": [ConfigValidationError] * 5})
        report = harness.run_suite(["CCS"], frames=1, runner=runner,
                                   max_attempts=3, backoff_s=0.0)
        assert report.failed and report.failed[0].attempts == 1

    def test_retries_are_bounded(self):
        runner = ScriptedRunner({"CCS": [CacheCorruptionError] * 10})
        report = harness.run_suite(["CCS"], frames=1, runner=runner,
                                   max_attempts=3, backoff_s=0.0)
        assert report.failed[0].attempts == 3
        assert len(runner.calls) == 3

    def test_timeout_recorded_as_failure(self):
        report = harness.run_suite(["CCS"], frames=1, timeout_s=0.2,
                                   runner=sleepy_runner(10.0),
                                   backoff_s=0.0)
        assert report.failed
        assert report.failed[0].error_type == "BenchmarkTimeoutError"
        assert report.failed[0].elapsed_s < 5.0

    def test_unknown_benchmark_skipped_with_valid_names(self):
        runner = ScriptedRunner({})
        report = harness.run_suite(["CCS", "NOPE"], frames=1,
                                   runner=runner)
        assert [o.benchmark for o in report.skipped] == ["NOPE"]
        assert "valid:" in report.skipped[0].error
        assert "CCS" in report.skipped[0].error
        # the unknown name was never attempted
        assert ("NOPE", "libra") not in runner.calls

    def test_unexpected_exception_wrapped(self):
        runner = ScriptedRunner({"CCS": [ZeroDivisionError] * 5})
        report = harness.run_suite(["CCS"], frames=1, runner=runner,
                                   backoff_s=0.0)
        assert report.failed[0].error_type == "SimulationError"

    def test_report_format_mentions_every_outcome(self):
        runner = ScriptedRunner({"GDL": [SimulationError] * 5})
        report = harness.run_suite(["CCS", "GDL", "NOPE"], frames=1,
                                   runner=runner, backoff_s=0.0)
        text = report.format()
        assert "1 ok" in text and "1 failed" in text and "1 skipped" in text
        for name in ("CCS", "GDL", "NOPE"):
            assert name in text


class TestEndToEndDegradation:
    """The acceptance scenario: corrupt cache mid-campaign, keep going."""

    def test_campaign_survives_cache_corruption(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = harness.run_simulation("GDL", "ptr", frames=1)
        # Damage every cache entry the run produced.
        for path in tmp_path.glob("*.pkl"):
            truncate_file(path)
        again = harness.run_simulation("GDL", "ptr", frames=1)
        assert again.total_cycles == first.total_cycles
        assert list(tmp_path.glob("*.corrupt*"))  # evidence retained
