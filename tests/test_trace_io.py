"""Tests for JSON trace interchange."""

import json

import pytest

from repro.errors import TraceFormatError
from repro.gpu.workload import FrameTrace, TileWorkload
from repro.workloads.trace_io import (load_traces, save_traces,
                                      trace_from_dict, trace_to_dict)


def make_trace(frame_index=0):
    workloads = {
        (0, 0): TileWorkload(
            tile=(0, 0), instructions=1234, fragments=150,
            texture_lines=[1, 5, 9], texture_fetches=40,
            pb_lines=[100], fb_lines=[200, 201],
            num_primitives=2, prim_fragments=[100, 50],
            prim_instructions=[800, 434]),
        (1, 1): TileWorkload(tile=(1, 1)),  # empty: should be omitted
    }
    return FrameTrace(frame_index=frame_index, tiles_x=2, tiles_y=2,
                      tile_size=32, workloads=workloads,
                      geometry_cycles=777, vertex_lines=[3, 4],
                      vertex_instructions=64)


class TestDictRoundtrip:
    def test_roundtrip_preserves_workloads(self):
        trace = make_trace()
        back = trace_from_dict(trace_to_dict(trace))
        assert back.frame_index == trace.frame_index
        assert back.geometry_cycles == 777
        assert back.vertex_lines == [3, 4]
        original = trace.workloads[(0, 0)]
        restored = back.workloads[(0, 0)]
        assert restored.instructions == original.instructions
        assert restored.texture_lines == original.texture_lines
        assert restored.prim_fragments == original.prim_fragments

    def test_empty_tiles_omitted_but_regenerated(self):
        back = trace_from_dict(trace_to_dict(make_trace()))
        assert (1, 1) not in back.workloads
        # workload_for still serves a flush-only placeholder.
        assert back.workload_for((1, 1)).instructions == 0

    def test_dict_is_json_serializable(self):
        json.dumps(trace_to_dict(make_trace()))

    def test_version_checked(self):
        data = trace_to_dict(make_trace())
        data["version"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(data)


class TestFileRoundtrip:
    def test_plain_json(self, tmp_path):
        traces = [make_trace(0), make_trace(1)]
        path = tmp_path / "traces.jsonl"
        save_traces(traces, path)
        loaded = load_traces(path)
        assert [t.frame_index for t in loaded] == [0, 1]
        assert loaded[0].total_instructions() == \
            traces[0].total_instructions()

    def test_gzipped(self, tmp_path):
        traces = [make_trace()]
        path = tmp_path / "traces.jsonl.gz"
        save_traces(traces, path)
        loaded = load_traces(path)
        assert len(loaded) == 1
        assert path.stat().st_size > 0

    def test_gzip_smaller_than_plain(self, tmp_path):
        trace = make_trace()
        trace.workloads[(0, 0)].texture_lines = list(range(5000))
        save_traces([trace], tmp_path / "a.jsonl")
        save_traces([trace], tmp_path / "a.jsonl.gz")
        assert (tmp_path / "a.jsonl.gz").stat().st_size < \
            (tmp_path / "a.jsonl").stat().st_size


class TestCorruptedInputs:
    """Malformed files raise TraceFormatError naming the offending path."""

    def saved(self, tmp_path, name="t.jsonl"):
        path = tmp_path / name
        save_traces([make_trace(0), make_trace(1)], path)
        return path

    def test_full_roundtrip_via_dict_and_file(self, tmp_path):
        path = self.saved(tmp_path)
        loaded = load_traces(path)
        assert [trace_to_dict(t) for t in loaded] == \
            [trace_to_dict(make_trace(0)), trace_to_dict(make_trace(1))]

    def test_truncated_gzip_names_path(self, tmp_path):
        path = self.saved(tmp_path, "t.jsonl.gz")
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(TraceFormatError) as err:
            load_traces(path)
        assert str(path) in str(err.value)

    def test_binary_garbage_plain_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b"\xff\xfe\x00garbage\x80")
        with pytest.raises(TraceFormatError):
            load_traces(path)

    def test_invalid_json_line_reports_line_number(self, tmp_path):
        path = self.saved(tmp_path)
        path.write_text(path.read_text() + "\n{broken")
        with pytest.raises(TraceFormatError, match=r":3: invalid JSON"):
            load_traces(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TraceFormatError, match="JSON object"):
            load_traces(path)

    def test_version_skew_names_path(self, tmp_path):
        path = self.saved(tmp_path)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        for record in records:
            record["version"] = 2
        path.write_text("\n".join(json.dumps(r) for r in records))
        with pytest.raises(TraceFormatError) as err:
            load_traces(path)
        assert str(path) in str(err.value)
        assert "version 2" in str(err.value)

    def test_missing_trace_key(self):
        data = trace_to_dict(make_trace())
        del data["tiles"]
        with pytest.raises(TraceFormatError, match="tiles"):
            trace_from_dict(data)

    def test_missing_tile_field(self):
        data = trace_to_dict(make_trace())
        del data["tiles"]["0,0"]["fragments"]
        with pytest.raises(TraceFormatError, match="fragments"):
            trace_from_dict(data)

    def test_malformed_tile_key(self):
        data = trace_to_dict(make_trace())
        data["tiles"]["not-a-coord"] = data["tiles"].pop("0,0")
        with pytest.raises(TraceFormatError, match="tile key"):
            trace_from_dict(data)

    def test_error_is_a_value_error(self):
        # Pre-taxonomy callers caught ValueError; the subclass keeps
        # that contract.
        data = trace_to_dict(make_trace())
        data["version"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(data)
