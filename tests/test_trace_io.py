"""Tests for JSON trace interchange."""

import json

import pytest

from repro.gpu.workload import FrameTrace, TileWorkload
from repro.workloads.trace_io import (load_traces, save_traces,
                                      trace_from_dict, trace_to_dict)


def make_trace(frame_index=0):
    workloads = {
        (0, 0): TileWorkload(
            tile=(0, 0), instructions=1234, fragments=150,
            texture_lines=[1, 5, 9], texture_fetches=40,
            pb_lines=[100], fb_lines=[200, 201],
            num_primitives=2, prim_fragments=[100, 50],
            prim_instructions=[800, 434]),
        (1, 1): TileWorkload(tile=(1, 1)),  # empty: should be omitted
    }
    return FrameTrace(frame_index=frame_index, tiles_x=2, tiles_y=2,
                      tile_size=32, workloads=workloads,
                      geometry_cycles=777, vertex_lines=[3, 4],
                      vertex_instructions=64)


class TestDictRoundtrip:
    def test_roundtrip_preserves_workloads(self):
        trace = make_trace()
        back = trace_from_dict(trace_to_dict(trace))
        assert back.frame_index == trace.frame_index
        assert back.geometry_cycles == 777
        assert back.vertex_lines == [3, 4]
        original = trace.workloads[(0, 0)]
        restored = back.workloads[(0, 0)]
        assert restored.instructions == original.instructions
        assert restored.texture_lines == original.texture_lines
        assert restored.prim_fragments == original.prim_fragments

    def test_empty_tiles_omitted_but_regenerated(self):
        back = trace_from_dict(trace_to_dict(make_trace()))
        assert (1, 1) not in back.workloads
        # workload_for still serves a flush-only placeholder.
        assert back.workload_for((1, 1)).instructions == 0

    def test_dict_is_json_serializable(self):
        json.dumps(trace_to_dict(make_trace()))

    def test_version_checked(self):
        data = trace_to_dict(make_trace())
        data["version"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(data)


class TestFileRoundtrip:
    def test_plain_json(self, tmp_path):
        traces = [make_trace(0), make_trace(1)]
        path = tmp_path / "traces.jsonl"
        save_traces(traces, path)
        loaded = load_traces(path)
        assert [t.frame_index for t in loaded] == [0, 1]
        assert loaded[0].total_instructions() == \
            traces[0].total_instructions()

    def test_gzipped(self, tmp_path):
        traces = [make_trace()]
        path = tmp_path / "traces.jsonl.gz"
        save_traces(traces, path)
        loaded = load_traces(path)
        assert len(loaded) == 1
        assert path.stat().st_size > 0

    def test_gzip_smaller_than_plain(self, tmp_path):
        trace = make_trace()
        trace.workloads[(0, 0)].texture_lines = list(range(5000))
        save_traces([trace], tmp_path / "a.jsonl")
        save_traces([trace], tmp_path / "a.jsonl.gz")
        assert (tmp_path / "a.jsonl.gz").stat().st_size < \
            (tmp_path / "a.jsonl").stat().st_size
