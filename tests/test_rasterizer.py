"""Tests for edge-function rasterization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.mesh import ShaderProfile
from repro.geometry.primitive import Primitive
from repro.raster.rasterizer import rasterize_in_region


def prim(xy, depth=(0, 0, 0), inv_w=(1, 1, 1), uvs=None):
    uvs = np.array(uvs if uvs is not None
                   else [[0, 0], [1, 0], [0, 1]], dtype=np.float64)
    iw = np.array(inv_w, dtype=np.float64)
    return Primitive(
        xy=np.array(xy, dtype=np.float64),
        depth=np.array(depth, dtype=np.float64),
        inv_w=iw,
        uv_over_w=uvs * iw[:, None],
        texture_id=0, shader=ShaderProfile())


class TestCoverage:
    def test_axis_aligned_right_triangle_area(self):
        # Half of a 32x32 square; the 32 diagonal pixel centers land
        # exactly on the hypotenuse and belong to exactly one of the two
        # triangles sharing it (496 without them, 528 with them).
        batch = rasterize_in_region(
            prim([[0, 0], [32, 0], [0, 32]]), 0, 0, 32, 32)
        assert batch.count in (496, 528)

    def test_full_square_from_two_triangles(self):
        a = rasterize_in_region(prim([[0, 0], [32, 0], [32, 32]]),
                                0, 0, 32, 32)
        b = rasterize_in_region(prim([[0, 0], [32, 32], [0, 32]]),
                                0, 0, 32, 32)
        covered = set(zip(a.xs, a.ys)) | set(zip(b.xs, b.ys))
        assert a.count + b.count == 1024  # no double-shading on the seam
        assert len(covered) == 1024

    @given(seed=st.integers(0, 2_000))
    def test_shared_edge_never_double_shades(self, seed):
        rng = np.random.default_rng(seed)
        p0, p1, p2, p3 = rng.uniform(0, 32, size=(4, 2))
        a = rasterize_in_region(prim([p0, p1, p2]), 0, 0, 32, 32)
        b = rasterize_in_region(prim([p0, p2, p3]), 0, 0, 32, 32)
        overlap = set(zip(a.xs, a.ys)) & set(zip(b.xs, b.ys))
        # The quad's diagonal p0-p2 is shared; only non-convex layouts may
        # overlap elsewhere, so restrict to convex configurations.
        from repro.geometry.vecmath import edge_function
        s1 = edge_function(*p0, *p2, *p1)
        s2 = edge_function(*p0, *p2, *p3)
        if s1 * s2 < 0:  # p1 and p3 on opposite sides: proper quad split
            assert not overlap

    def test_degenerate_produces_nothing(self):
        batch = rasterize_in_region(
            prim([[0, 0], [16, 16], [32, 32]]), 0, 0, 32, 32)
        assert batch.count == 0

    def test_region_clipping(self):
        big = prim([[-100, -100], [200, -100], [-100, 200]])
        batch = rasterize_in_region(big, 0, 0, 32, 32)
        assert batch.count == 1024
        assert batch.xs.min() >= 0 and batch.xs.max() < 32
        assert batch.ys.min() >= 0 and batch.ys.max() < 32

    def test_region_offset(self):
        batch = rasterize_in_region(
            prim([[0, 0], [128, 0], [0, 128]]), 32, 32, 32, 32)
        assert batch.xs.min() >= 32 and batch.ys.min() >= 32

    def test_outside_region_empty(self):
        batch = rasterize_in_region(
            prim([[0, 0], [10, 0], [0, 10]]), 64, 64, 32, 32)
        assert batch.count == 0

    def test_winding_does_not_change_coverage(self):
        ccw = rasterize_in_region(prim([[0, 0], [32, 0], [0, 32]]),
                                  0, 0, 32, 32)
        cw = rasterize_in_region(prim([[0, 0], [0, 32], [32, 0]]),
                                 0, 0, 32, 32)
        assert set(zip(ccw.xs, ccw.ys)) == set(zip(cw.xs, cw.ys))

    def test_subpixel_triangle(self):
        # Smaller than a pixel and missing every pixel center.
        batch = rasterize_in_region(
            prim([[10.1, 10.1], [10.3, 10.1], [10.1, 10.3]]), 0, 0, 32, 32)
        assert batch.count == 0


class TestInterpolation:
    def test_depth_interpolated_linearly(self):
        batch = rasterize_in_region(
            prim([[0, 0], [32, 0], [0, 32]], depth=(0.0, 1.0, 1.0)),
            0, 0, 32, 32)
        near_origin = batch.depth[(batch.xs == 0) & (batch.ys == 0)]
        assert near_origin[0] == pytest.approx(0.0, abs=0.05)
        assert batch.depth.max() <= 1.0 + 1e-9

    def test_affine_uv_when_w_constant(self):
        batch = rasterize_in_region(
            prim([[0, 0], [32, 0], [0, 32]]), 0, 0, 32, 32)
        at = (batch.xs == 16) & (batch.ys == 0)
        assert batch.u[at][0] == pytest.approx(16.5 / 32, abs=0.02)

    def test_perspective_correct_uv(self):
        # One vertex twice as close (inv_w = 2): the midpoint of the edge
        # in screen space is NOT the midpoint in texture space.
        batch = rasterize_in_region(
            prim([[0, 0], [32, 0], [0, 32]], inv_w=(2.0, 1.0, 1.0)),
            0, 0, 32, 32)
        at = (batch.ys == 0) & (batch.xs == 16)
        # Perspective pulls the texture midpoint toward the closer vertex:
        # u(16px) = (w0*u0*2 + w1*u1*1)/(w0*2+w1*1) with w0=w1=0.5 -> 1/3.
        assert batch.u[at][0] == pytest.approx(1.0 / 3.0, abs=0.03)

    def test_quad_count_groups_2x2(self):
        batch = rasterize_in_region(
            prim([[0, 0], [4, 0], [4, 4], ]), 0, 0, 32, 32)
        assert batch.quad_count() <= batch.count
        assert batch.quad_count() >= batch.count / 4
