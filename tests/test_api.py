"""Contract tests for the curated ``repro.api`` façade.

``repro.api.__all__`` is the supported surface: importing it must be
warning-free, every name documented, and the verbs must agree with each
other — a ``compare`` row equals the sweep point with the same settings.
The deprecated shims, by contrast, must provably warn.
"""

import inspect
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro
import repro.api as api

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("api_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


class TestFacadeSurface:
    def test_all_names_resolve_and_are_documented(self):
        for name in api.__all__:
            obj = getattr(api, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"repro.api.{name} lacks a docstring"

    def test_facade_reexported_from_top_level(self):
        for name in ("build_traces", "simulate", "compare", "sweep",
                     "load_spec", "ExperimentSpec", "SweepResult",
                     "SpeedupMatrix", "ComparisonReport"):
            assert getattr(repro, name) is getattr(api, name)
            assert name in repro.__all__

    def test_service_surface_is_stable_api(self):
        """1.3.0 promoted the sweep service into the façade."""
        for name in ("serve", "run_worker", "SweepClient", "JobRecord",
                     "ServiceError"):
            assert name in api.__all__
            assert getattr(repro, name) is getattr(api, name)
            assert name in repro.__all__
        # ServiceError is part of the catchable ReproError taxonomy.
        assert issubclass(api.ServiceError, api.ReproError)
        assert tuple(map(int, repro.__version__.split("."))) >= (1, 3, 0)

    def test_import_is_warning_free(self):
        # A fresh interpreter: the session's own imports already fired.
        env = dict(os.environ, PYTHONPATH=str(SRC))
        subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c",
             "import repro, repro.api"],
            check=True, env=env, timeout=120)

    def test_legacy_shim_warns(self):
        from repro import harness
        with pytest.warns(DeprecationWarning, match="GPUConfig.build"):
            harness.make_config("libra")


class TestVerbs:
    def test_simulate_returns_summary(self, shared_cache_dir):
        summary = api.simulate("tri_overlap", kind="libra", frames=1,
                               width=128, height=64)
        assert summary.kind == "libra"
        assert summary.total_cycles > 0

    def test_simulate_settings_reach_the_config(self, shared_cache_dir):
        slow = api.simulate("tri_overlap", kind="baseline", frames=1,
                            width=128, height=64,
                            settings={"dram.row_miss_cycles": 800,
                                      "dram.row_hit_cycles": 400})
        fast = api.simulate("tri_overlap", kind="baseline", frames=1,
                            width=128, height=64,
                            settings={"dram.row_miss_cycles": 40,
                                      "dram.row_hit_cycles": 20})
        assert slow.total_cycles > fast.total_cycles

    def test_compare_speedups_normalize_to_first(self, shared_cache_dir):
        report = api.compare("tri_overlap", kinds=("baseline", "libra"),
                             frames=1, width=128, height=64)
        speedups = report.speedups()
        assert report.baseline_kind == "baseline"
        assert speedups["baseline"] == pytest.approx(1.0)
        assert speedups["libra"] > 0
        assert "speedup" in report.format()

    def test_compare_matches_sweep_matrix(self, shared_cache_dir,
                                          tmp_path):
        """The acceptance cross-check: matrix entries == compare rows."""
        kinds = ("baseline", "libra")
        report = api.compare("tri_overlap", kinds=kinds, frames=1,
                             width=128, height=64)
        spec = api.ExperimentSpec(
            name="xcheck", benchmarks=["tri_overlap"], kinds=list(kinds),
            frames=1, width=128, height=64)
        result = api.sweep(spec, store_root=tmp_path / "store")
        row = api.speedup_matrix(result).rows[0]
        for kind in kinds:
            assert row.cycles[kind] == report.summaries[kind].total_cycles
        assert row.speedups["libra"] == \
            pytest.approx(report.speedups()["libra"])

    def test_sweep_accepts_spec_path(self, shared_cache_dir, tmp_path):
        import json
        spec = api.ExperimentSpec(
            name="fromfile", benchmarks=["tri_overlap"],
            kinds=["baseline"], frames=1, width=128, height=64)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert api.load_spec(path) == spec
        result = api.sweep(path, store_root=tmp_path / "store")
        assert len(result.completed) == 1

    def test_build_traces_cached_and_shared(self, shared_cache_dir):
        first = api.build_traces("tri_overlap", frames=1, width=128,
                                 height=64)
        second = api.build_traces("tri_overlap", frames=1, width=128,
                                  height=64)
        assert len(first) == 1
        assert first[0].total_texture_lines() == \
            second[0].total_texture_lines()
