"""Contract tests for the public API surface.

A downstream user imports from ``repro`` and ``repro.core`` /
``repro.gpu`` / ...; these tests pin the names and a few behavioural
contracts so refactors cannot silently break the advertised interface.
"""

import inspect

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_key_entry_points_present(self):
        for name in ("GPUSimulator", "LibraScheduler", "TraceBuilder",
                     "baseline_config", "libra_config",
                     "make_scene_builder", "benchmark_names"):
            assert name in repro.__all__

    def test_every_export_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestSubpackageExports:
    @pytest.mark.parametrize("module_name", [
        "repro.core", "repro.gpu", "repro.memory", "repro.raster",
        "repro.tiling", "repro.geometry", "repro.workloads",
        "repro.energy", "repro.stats",
    ])
    def test_subpackage_all_resolves(self, module_name):
        module = __import__(module_name, fromlist=["__all__"])
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_scheduler_contract(self):
        from repro.core import TileScheduler
        methods = {m for m, _ in inspect.getmembers(
            TileScheduler, inspect.isfunction)}
        assert {"begin_frame", "end_frame", "configure"} <= methods

    def test_dispenser_contract(self):
        from repro.core import Dispenser
        methods = {m for m, _ in inspect.getmembers(
            Dispenser, inspect.isfunction)}
        assert {"next_batch", "remaining"} <= methods


class TestConfigPresetsAreIndependent:
    def test_presets_do_not_share_mutable_state(self):
        a = repro.baseline_config()
        b = repro.baseline_config()
        a.raster_unit.num_cores = 99
        assert b.raster_unit.num_cores == 8

    def test_libra_and_baseline_same_table1_memory(self):
        base = repro.baseline_config()
        libra = repro.libra_config()
        assert base.l2_cache == libra.l2_cache
        assert base.dram == libra.dram
        assert base.texture_cache == libra.texture_cache
