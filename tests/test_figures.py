"""Tests for the paper-reproduction figures pipeline (repro.figures).

Check-grammar evaluation, registry integrity, the runner's exit
contract (0 all shapes hold / 1 regression / 2 usage), checkpointed
resume through the shared artifact store, the figures_manifest.json
schema, and both renderers (EXPERIMENTS.md and the self-contained HTML
dashboard).  The sweep-backed tests use the quick profile restricted to
one figure so the whole module stays at test scale.
"""

import json
import os
from html.parser import HTMLParser

import pytest

from repro.cli import main
from repro.errors import ConfigValidationError
from repro.figures import (describe_check, evaluate_check, figure_ids,
                           figure_registry, render_dashboard,
                           render_experiments_md, run_figures,
                           select_figures)
from repro.figures.runner import MANIFEST_SCHEMA


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    """One trace-cache directory for the module (runs share traces)."""
    path = tmp_path_factory.mktemp("figures_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


class TestCheckGrammar:
    def test_constant_comparisons(self):
        m = {"x": 2.0}
        assert evaluate_check(("gt", 1.0), "x", m)
        assert not evaluate_check(("gt", 2.0), "x", m)
        assert evaluate_check(("ge", 2.0), "x", m)
        assert evaluate_check(("lt", 3.0), "x", m)
        assert evaluate_check(("le", 2.0), "x", m)
        assert evaluate_check(("eq", 2.0), "x", m)

    def test_range_is_exclusive(self):
        m = {"x": 1.0}
        assert evaluate_check(("range", 0.9, 1.1), "x", m)
        assert not evaluate_check(("range", 1.0, 1.1), "x", m)

    def test_key_comparisons_with_scale_and_offset(self):
        m = {"libra": 1.10, "ptr": 1.00}
        assert evaluate_check(("gt_key", "ptr"), "libra", m)
        assert evaluate_check(("ge_key", "ptr", 1.1), "libra", m)
        assert not evaluate_check(("gt_key", "ptr", 1.2), "libra", m)
        assert evaluate_check(("le_key", "ptr", 1.0, 0.1), "libra", m)

    def test_missing_key_is_registry_bug(self):
        with pytest.raises(ConfigValidationError, match="unmeasured"):
            evaluate_check(("gt", 0.0), "nope", {"x": 1.0})
        with pytest.raises(ConfigValidationError, match="unmeasured"):
            evaluate_check(("gt_key", "nope"), "x", {"x": 1.0})

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigValidationError, match="unknown check"):
            evaluate_check(("approx", 1.0), "x", {"x": 1.0})

    def test_describe_check(self):
        assert describe_check(("gt", 1.03)) == "value > 1.03"
        assert describe_check(("range", 0.85, 1.1)) == \
            "0.85 < value < 1.1"
        assert describe_check(("gt_key", "ptr")) == "value > ptr"
        assert describe_check(("ge_key", "ptr", 0.99)) == \
            "value >= ptr*0.99"
        assert describe_check(("ge_key", "ptr", 1.0, -0.01)) == \
            "value >= ptr-0.01"


class TestRegistry:
    def test_profiles_register_the_same_figures(self):
        assert figure_ids(quick=False) == figure_ids(quick=True)
        assert len(figure_ids()) == 11

    def test_quick_stores_never_collide_with_full(self):
        full = figure_registry(quick=False)
        quick = figure_registry(quick=True)
        for fid, figure in quick.items():
            if figure.spec is None:
                assert full[fid].spec is None
                continue
            assert figure.spec.name.endswith("-quick")
            assert figure.spec.name != full[fid].spec.name

    def test_specs_validate_and_are_shared(self):
        registry = figure_registry(quick=True)
        for figure in registry.values():
            if figure.spec is not None:
                figure.spec.validate()
        # Figs 7 and 11-15 all read the one memory-intensive grid.
        memory = registry["fig11"].spec
        for fid in ("fig7", "fig12", "fig13", "fig14", "fig15"):
            assert registry[fid].spec is memory
        assert registry["table1"].spec is None

    def test_select_figures_keeps_registry_order(self):
        registry = figure_registry(quick=True)
        picked = select_figures(registry, ["table2", "fig1"])
        assert [f.fid for f in picked] == ["fig1", "table2"]

    def test_select_figures_rejects_unknown(self):
        with pytest.raises(ConfigValidationError, match="nosuchfig"):
            select_figures(figure_registry(quick=True), ["nosuchfig"])


@pytest.fixture(scope="module")
def tables_report(tmp_path_factory):
    """Config-only figures: no sweep, so this is effectively free."""
    store = tmp_path_factory.mktemp("tables_store")
    return run_figures(only=["table1", "table2"], quick=True,
                       store_root=str(store))


class TestTablesRun:
    def test_all_claims_hold(self, tables_report):
        assert [f.fid for f in tables_report.figures] == ["table1",
                                                          "table2"]
        assert all(f.status == "pass" for f in tables_report.figures)
        assert tables_report.exit_code == 0

    def test_config_tables_carry_no_sweep_provenance(self, tables_report):
        manifest = tables_report.to_manifest()
        for figure in manifest["figures"]:
            assert "sweep" not in figure

    def test_manifest_schema(self, tables_report):
        manifest = tables_report.to_manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["quick"] is True
        assert manifest["exit_code"] == 0
        assert manifest["counts"]["pass"] == 2
        assert manifest["generated"]
        exp = manifest["figures"][0]["expectations"][0]
        assert {"key", "measured", "passed", "check",
                "claim"} <= set(exp)
        json.dumps(manifest)  # round-trippable, no exotic types

    def test_seeded_regression_flips_exit_code(self, tmp_path):
        report = run_figures(only=["table1"], quick=True,
                             store_root=str(tmp_path),
                             seed_regression=["table1"])
        assert report.exit_code == 1
        (outcome,) = report.figures
        assert outcome.status == "fail"
        assert all(e.seeded and not e.passed
                   for e in outcome.expectations)
        assert report.to_manifest()["figures"][0]["expectations"][0][
            "seeded"] is True


@pytest.fixture(scope="module")
def fig17_store(tmp_path_factory):
    return tmp_path_factory.mktemp("fig17_store")


@pytest.fixture(scope="module")
def fig17_report(shared_cache_dir, fig17_store):
    """One quick sweep-backed figure (4 benchmarks x 3 kinds)."""
    return run_figures(only=["fig17"], quick=True,
                       store_root=str(fig17_store))


class TestSweepBackedRun:
    def test_fig17_evaluates_from_checkpoints(self, fig17_report):
        (outcome,) = fig17_report.figures
        assert outcome.status == "pass"
        assert outcome.spec_name == "figures-headline-compute-quick"
        assert outcome.points_total == 12
        assert outcome.points_executed == 12
        assert outcome.points_resumed == 0
        assert outcome.points_failed == 0
        assert set(outcome.metrics) == {"ptr_speedup", "libra_speedup",
                                        "scheduler_gain",
                                        "worst_bench_libra_vs_ptr"}
        assert outcome.plot["type"] == "bars"

    def test_rerun_resumes_without_executing(self, fig17_report,
                                             fig17_store, monkeypatch):
        import repro.experiments.engine as engine

        def forbidden(point):
            raise AssertionError(
                f"re-executed checkpointed point {point.point_id}")

        monkeypatch.setattr(engine, "execute_point", forbidden)
        again = run_figures(only=["fig17"], quick=True,
                            store_root=str(fig17_store))
        (outcome,) = again.figures
        assert outcome.status == "pass"
        assert outcome.points_resumed == 12
        assert outcome.points_executed == 0
        assert (outcome.metrics
                == fig17_report.figures[0].metrics)

    def test_matrices_cover_multi_kind_sweeps(self, fig17_report):
        matrices = fig17_report.matrices()
        (matrix,) = matrices.values()
        assert set(matrix.kinds) == {"baseline", "ptr", "libra"}
        assert len(matrix.rows) == 4


class TestMarkdownRenderer:
    def test_registry_figures_render_with_verdicts(self, tables_report):
        text = render_experiments_md(tables_report)
        assert "# EXPERIMENTS — paper vs. measured" in text
        assert "## Table I — simulation parameters" in text
        assert "**Shape verdict:** ✅ PASS" in text
        assert "| metric | measured | paper | delta |" in text

    def test_uncovered_sections_keep_their_evidence(self, tables_report):
        text = render_experiments_md(tables_report)
        assert "Asserted by the benchmark suite" in text
        # A bench-only figure keeps its claim even when not selected.
        assert "Figure 19 — threshold sensitivity" in text

    def test_seeded_regression_visible(self, tmp_path):
        report = run_figures(only=["table2"], quick=True,
                             store_root=str(tmp_path),
                             seed_regression=["table2"])
        text = render_experiments_md(report)
        assert "**Shape verdict:** ❌ FAIL" in text
        assert "*(seeded regression)*" in text

    def test_sweep_matrix_rendered(self, fig17_report):
        text = render_experiments_md(fig17_report)
        assert "## Sweep matrix: figures-headline-compute-quick" in text
        assert "| **geomean**" in text


class _MarkupAudit(HTMLParser):
    VOID = {"br", "hr", "img", "meta", "link", "input", "path", "rect",
            "circle", "line", "polyline", "polygon", "stop", "use"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.external = []
        self.scripts = 0

    def handle_starttag(self, tag, attrs):
        if tag == "script":
            self.scripts += 1
        for name, value in attrs:
            if name in ("src", "href") and value and \
                    not value.startswith("#"):
                self.external.append(value)
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        while self.stack and self.stack[-1] != tag:
            self.stack.pop()  # tolerate implicitly-closed tags
        if self.stack:
            self.stack.pop()


class TestHtmlDashboard:
    def test_self_contained_document(self, fig17_report):
        html = render_dashboard(fig17_report)
        audit = _MarkupAudit()
        audit.feed(html)
        assert audit.external == []  # no fonts, CDNs, stylesheets
        assert audit.scripts == 0
        assert audit.stack == []  # every element closed
        assert html.startswith("<!DOCTYPE html>")

    def test_figures_and_plots_present(self, fig17_report):
        html = render_dashboard(fig17_report)
        assert "Figure 17" in html
        assert "<svg" in html
        assert "figures-headline-compute-quick" in html
        (outcome,) = fig17_report.figures
        assert outcome.spec_fingerprint[:12] in html

    def test_failed_figure_gets_fail_badge(self, tmp_path):
        report = run_figures(only=["table1"], quick=True,
                             store_root=str(tmp_path),
                             seed_regression=["table1"])
        html = render_dashboard(report)
        assert "FAIL" in html

    def test_perf_markdown_embedded(self, tables_report):
        html = render_dashboard(tables_report,
                                perf_markdown="## DRAM bandwidth over "
                                              "time\nunique-sentinel")
        assert "unique-sentinel" in html


class TestCliContract:
    def test_unknown_figure_is_usage_error(self, tmp_path):
        assert main(["figures", "--only", "nosuchfig", "--quick",
                     "--out", str(tmp_path / "out"),
                     "--store", str(tmp_path / "store")]) == 2

    def test_tables_run_writes_all_artifacts(self, capsys, tmp_path):
        out = tmp_path / "out"
        code = main(["figures", "--only", "table1,table2", "--quick",
                     "--format", "both", "--out", str(out),
                     "--store", str(tmp_path / "store")])
        assert code == 0
        manifest = json.loads(
            (out / "figures_manifest.json").read_text())
        assert manifest["exit_code"] == 0
        assert [f["id"] for f in manifest["figures"]] == ["table1",
                                                          "table2"]
        assert (out / "figures_dashboard.html").exists()
        assert (out / "EXPERIMENTS.md").exists()
        printed = capsys.readouterr().out
        assert "figures: 2/2 pass" in printed

    def test_seeded_regression_exits_one(self, capsys, tmp_path):
        out = tmp_path / "out"
        code = main(["figures", "--only", "table1", "--quick",
                     "--seed-regression", "table1", "--format", "md",
                     "--out", str(out),
                     "--store", str(tmp_path / "store")])
        assert code == 1
        manifest = json.loads(
            (out / "figures_manifest.json").read_text())
        assert manifest["exit_code"] == 1
        assert manifest["counts"]["fail"] == 1
