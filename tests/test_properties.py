"""Cross-module property-based tests on system invariants.

These go beyond per-module unit tests: they generate random scenes /
schedules and check invariants that the whole stack must preserve.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import RasterUnitConfig, small_config
from repro.core.scheduler import (HotColdDispenser, QueueDispenser,
                                  supertile_batches_zorder,
                                  zorder_tile_batches)
from repro.geometry import DrawCall, GeometryPipeline, quad_mesh
from repro.geometry.vecmath import orthographic
from repro.gpu.frame import FrameDriver
from repro.gpu.workload import FrameTrace, TileWorkload
from repro.core.scheduler import ZOrderScheduler
from repro.raster.pipeline import RasterPipeline
from repro.raster.texture import TextureSet
from repro.tiling.engine import TilingEngine

CAMERA = orthographic(0.0, 128.0, 0.0, 128.0, -10.0, 10.0)

sprite_lists = st.lists(
    st.tuples(st.floats(-20, 140), st.floats(-20, 140),
              st.floats(1, 60), st.integers(0, 2)),
    min_size=1, max_size=8)


def _render_fragments(sprites):
    """Total shaded fragments of a random sprite scene."""
    textures = TextureSet()
    for i in range(3):
        textures.add(64, 64, seed=i)
    draws = []
    for i, (x, y, size, tex) in enumerate(sprites):
        draws.append(DrawCall(mesh=quad_mesh(x, y, size, size,
                                             z=0.001 * i),
                              texture_id=tex))
    geometry = GeometryPipeline(128, 128).run(draws, CAMERA)
    tiled = TilingEngine(4, 4, 32).tile_frame(geometry.primitives)
    pipeline = RasterPipeline(128, 128, 32, textures, shade_colors=False)
    return {tile: pipeline.process_tile(tile, tiled.primitives_for(tile))
            for tile in tiled.default_order}


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sprites=sprite_lists)
def test_fragments_bounded_by_coverage(sprites):
    """Shaded fragments never exceed rasterized fragments, which never
    exceed the total screen area times the number of primitives."""
    results = _render_fragments(sprites)
    for result in results.values():
        assert result.fragments_shaded <= result.fragments_rasterized
        assert result.fragments_shaded + result.fragments_early_rejected \
            == result.fragments_rasterized


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sprites=sprite_lists)
def test_opaque_full_screen_coverage_invariant(sprites):
    """With an opaque full-screen backdrop drawn first, every pixel of
    every tile is shaded at least once (no holes in the pipeline)."""
    textures = TextureSet()
    textures.add(64, 64, seed=0)
    draws = [DrawCall(mesh=quad_mesh(0, 0, 128, 128, z=0.0))]
    for i, (x, y, size, _) in enumerate(sprites):
        draws.append(DrawCall(mesh=quad_mesh(x, y, size, size,
                                             z=0.001 * (i + 1))))
    geometry = GeometryPipeline(128, 128).run(draws, CAMERA)
    tiled = TilingEngine(4, 4, 32).tile_frame(geometry.primitives)
    pipeline = RasterPipeline(128, 128, 32, textures, shade_colors=False)
    for tile in tiled.default_order:
        result = pipeline.process_tile(tile, tiled.primitives_for(tile))
        assert result.fragments_shaded >= 32 * 32


@settings(max_examples=30, deadline=None)
@given(tx=st.integers(1, 10), ty=st.integers(1, 10),
       size=st.sampled_from([2, 4, 8]),
       pattern=st.lists(st.integers(0, 1), min_size=1, max_size=4))
def test_dispensers_conserve_tiles(tx, ty, size, pattern):
    """Every dispenser hands out each tile of the frame exactly once,
    regardless of which unit polls in which order."""
    trace = FrameTrace(frame_index=0, tiles_x=tx, tiles_y=ty,
                       tile_size=32, workloads={})
    for dispenser in (QueueDispenser(zorder_tile_batches(trace)),
                      QueueDispenser(supertile_batches_zorder(trace, size)),
                      HotColdDispenser(
                          supertile_batches_zorder(trace, size))):
        seen = []
        i = 0
        while True:
            batch = dispenser.next_batch(pattern[i % len(pattern)])
            if batch is None:
                break
            seen.extend(batch)
            i += 1
        assert sorted(seen) == sorted(
            (x, y) for x in range(tx) for y in range(ty))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_timing_conserves_work(seed):
    """The timing simulator completes every tile and attributes every
    instruction, whatever the workload distribution."""
    rng = np.random.default_rng(seed)
    workloads = {}
    for y in range(4):
        for x in range(4):
            insts = int(rng.integers(0, 20_000))
            frags = insts // 8
            lines = [int(v) for v in
                     rng.integers(0, 100_000, size=rng.integers(0, 50))]
            workloads[(x, y)] = TileWorkload(
                tile=(x, y), instructions=insts, fragments=frags,
                texture_lines=lines, texture_fetches=len(lines),
                num_primitives=1 if insts else 0,
                prim_fragments=[frags] if insts else [],
                prim_instructions=[insts] if insts else [])
    trace = FrameTrace(frame_index=0, tiles_x=4, tiles_y=4, tile_size=32,
                       workloads=workloads, geometry_cycles=100)
    cfg = small_config(num_raster_units=2,
                       raster_unit=RasterUnitConfig(num_cores=4))
    driver = FrameDriver(cfg, ZOrderScheduler())
    result = driver.run_frame(trace)
    assert result.tiles_completed == 16
    total_insts = sum(w.instructions for w in workloads.values())
    assert result.energy_counts.core_instructions == total_insts
    assert set(result.per_tile_dram) == set(workloads)
