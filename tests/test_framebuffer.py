"""Tests for the Color Buffer / Frame Buffer pair."""

import numpy as np
import pytest

from repro.config import CACHE_LINE_BYTES
from repro.raster.framebuffer import (PIXELS_PER_LINE, FrameBuffer,
                                      TileColorBuffer, tile_flush_lines)


class TestTileColorBuffer:
    def test_clear_color(self):
        cb = TileColorBuffer(32, clear_color=(0.1, 0.2, 0.3, 1.0))
        snap = cb.snapshot()
        assert np.allclose(snap[0, 0], [0.1, 0.2, 0.3, 1.0])

    def test_write_read_roundtrip(self):
        cb = TileColorBuffer(32)
        cb.reset(64, 64)
        xs = np.array([70, 71])
        ys = np.array([65, 66])
        colors = np.array([[1, 0, 0, 1], [0, 1, 0, 1]], dtype=np.float64)
        cb.write(xs, ys, colors)
        assert np.allclose(cb.read(xs, ys), colors)

    def test_reset_clears(self):
        cb = TileColorBuffer(32)
        cb.write(np.array([1]), np.array([1]),
                 np.array([[1.0, 1, 1, 1]]))
        cb.reset(0, 0)
        assert np.allclose(cb.snapshot()[1, 1], cb.clear_color)


class TestFrameBuffer:
    def test_flush_writes_pixels(self):
        fb = FrameBuffer(64, 64, base_address=0)
        cb = TileColorBuffer(32, clear_color=(1, 0, 0, 1))
        cb.reset(32, 0)
        fb.flush_tile(32, 0, cb)
        assert np.allclose(fb.image()[0, 32], [1, 0, 0, 1])
        assert np.allclose(fb.image()[0, 0], 0.0)

    def test_flush_lines_cover_tile_bytes(self):
        fb = FrameBuffer(64, 64, base_address=0)
        cb = TileColorBuffer(32)
        cb.reset(0, 0)
        lines = fb.flush_tile(0, 0, cb)
        # 32 rows x 32 px x 4 B = 4096 bytes, but rows are strided across
        # the 64-px-wide frame: each row covers 128 bytes = 2 lines.
        assert len(lines) == 32 * (32 * 4 // CACHE_LINE_BYTES)

    def test_flush_clips_at_screen_edge(self):
        fb = FrameBuffer(48, 48, base_address=0)
        cb = TileColorBuffer(32)
        cb.reset(32, 32)
        lines = fb.flush_tile(32, 32, cb)
        assert lines  # the 16x16 visible part still flushes
        assert len(lines) == 16  # 16 rows x 64B each

    def test_flush_fully_offscreen_is_empty(self):
        fb = FrameBuffer(32, 32, base_address=0)
        cb = TileColorBuffer(32)
        assert fb.flush_tile(64, 64, cb) == []

    def test_image_without_storage_raises(self):
        fb = FrameBuffer(32, 32, store_pixels=False)
        with pytest.raises(RuntimeError):
            fb.image()

    def test_image_u8(self):
        fb = FrameBuffer(32, 32, base_address=0)
        cb = TileColorBuffer(32, clear_color=(1, 1, 1, 1))
        cb.reset(0, 0)
        fb.flush_tile(0, 0, cb)
        assert fb.image_u8().dtype == np.uint8
        assert fb.image_u8()[0, 0, 0] == 255

    def test_rejects_unaligned_base(self):
        with pytest.raises(ValueError):
            FrameBuffer(32, 32, base_address=100)


class TestFlushLinesHelper:
    def test_matches_framebuffer_flush(self):
        fb = FrameBuffer(64, 64, base_address=0)
        cb = TileColorBuffer(32)
        cb.reset(0, 32)
        via_fb = fb.flush_tile(0, 32, cb)
        via_helper = tile_flush_lines(0, 32, 32, 64, 64, base_address=0)
        assert via_fb == via_helper

    def test_distinct_tiles_distinct_interiors(self):
        a = tile_flush_lines(0, 0, 32, 128, 128)
        b = tile_flush_lines(64, 0, 32, 128, 128)
        assert not set(a) & set(b)

    def test_pixels_per_line(self):
        assert PIXELS_PER_LINE == 16
