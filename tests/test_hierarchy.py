"""Tests for the shared L2 + DRAM wiring and traffic accounting."""

import pytest

from repro.config import small_config
from repro.memory.hierarchy import (SharedMemory, make_texture_l1,
                                    make_tile_cache, make_vertex_cache)
from repro.memory.traffic import (FRAMEBUFFER, GEOMETRY, PARAMETER, TEXTURE,
                                  WRITEBACK, TrafficBreakdown)


@pytest.fixture
def shared():
    return SharedMemory(small_config())


class TestSharedMemory:
    def test_l2_miss_goes_to_dram(self, shared):
        level = shared.access(0, TEXTURE)
        assert level == "dram"
        assert shared.dram.stats.reads == 1
        assert shared.traffic.counts[TEXTURE] == 1

    def test_l2_hit_stays_on_chip(self, shared):
        shared.access(0, TEXTURE)
        level = shared.access(0, TEXTURE)
        assert level == "l2"
        assert shared.dram.stats.reads == 1

    def test_dirty_l2_victim_written_back(self):
        cfg = small_config()
        cfg.l2_cache = cfg.l2_cache.__class__(64 * 16, 2, latency_cycles=1)
        shared = SharedMemory(cfg)
        shared.access(0, TEXTURE, write=True)
        shared.access(8, TEXTURE)
        shared.access(16, TEXTURE)  # evicts dirty line 0
        assert shared.dram.stats.writes == 1
        assert shared.traffic.counts[WRITEBACK] == 1

    def test_stream_to_dram_bypasses_l2(self, shared):
        shared.stream_to_dram(0, FRAMEBUFFER)
        assert shared.dram.stats.writes == 1
        assert not shared.l2.contains(0)
        assert shared.traffic.counts[FRAMEBUFFER] == 1

    def test_access_latency_levels(self, shared):
        assert shared.access_latency("l2") == \
            shared.config.l2_cache.latency_cycles
        assert shared.access_latency("dram") > shared.access_latency("l2")
        with pytest.raises(ValueError):
            shared.access_latency("l3")

    def test_reset(self, shared):
        shared.access(0, TEXTURE)
        shared.reset()
        assert shared.l2.stats.accesses == 0
        assert shared.traffic.total == 0


class TestCacheFactories:
    def test_texture_l1_aggregates_cores(self):
        cfg = small_config()
        cfg.raster_unit.num_cores = 4
        l1 = make_texture_l1(cfg)
        assert l1.config.size_bytes == 4 * cfg.texture_cache.size_bytes

    def test_texture_l1_odd_core_count(self):
        cfg = small_config()
        cfg.raster_unit.num_cores = 3
        l1 = make_texture_l1(cfg)
        l1.lookup(0)  # geometry still valid (power-of-two sets)
        assert l1.config.num_sets & (l1.config.num_sets - 1) == 0

    def test_tile_and_vertex_caches(self):
        cfg = small_config()
        assert make_tile_cache(cfg).config.size_bytes == \
            cfg.tile_cache.size_bytes
        assert make_vertex_cache(cfg).config.size_bytes == \
            cfg.vertex_cache.size_bytes


class TestTrafficBreakdown:
    def test_add_and_total(self):
        t = TrafficBreakdown()
        t.add(TEXTURE, 3)
        t.add(GEOMETRY)
        assert t.total == 4

    def test_raster_total_excludes_geometry(self):
        t = TrafficBreakdown()
        t.add(TEXTURE, 3)
        t.add(PARAMETER, 2)
        t.add(GEOMETRY, 5)
        assert t.raster_total() == 5

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            TrafficBreakdown().add("display")

    def test_merge(self):
        a, b = TrafficBreakdown(), TrafficBreakdown()
        a.add(TEXTURE, 1)
        b.add(TEXTURE, 2)
        b.add(FRAMEBUFFER, 4)
        merged = a.merged_with(b)
        assert merged.counts[TEXTURE] == 3
        assert merged.counts[FRAMEBUFFER] == 4
