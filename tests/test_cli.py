"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--benchmark", "CCS"])
        assert args.config == "libra"
        assert args.frames == 8

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "NOPE"])

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmark", "CCS", "--config", "magic"])


class TestCommands:
    def test_list_prints_suite(self, capsys):
        assert main(["--width", "256", "--height", "128", "list"]) == 0
        out = capsys.readouterr().out
        assert "CCS" in out and "GDL" in out

    def test_run_small(self, capsys):
        code = main(["--width", "256", "--height", "128",
                     "run", "--benchmark", "GDL", "--config", "ptr",
                     "--frames", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GDL on ptr" in out
        assert "raster cyc" in out

    def test_compare_small(self, capsys):
        code = main(["--width", "256", "--height", "128",
                     "compare", "--benchmark", "GDL", "--frames", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "libra" in out
        assert "speedup" in out

    def test_heatmap_small(self, capsys):
        code = main(["--width", "256", "--height", "128",
                     "heatmap", "--benchmark", "CCS"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-tile DRAM accesses" in out

    def test_trace_export(self, capsys, tmp_path):
        out_path = str(tmp_path / "t.jsonl.gz")
        code = main(["--width", "256", "--height", "128",
                     "trace", "--benchmark", "GDL", "--frames", "2",
                     "--out", out_path])
        assert code == 0
        from repro.workloads import load_traces
        assert len(load_traces(out_path)) == 2


class TestRobustness:
    """Error contract: exit 2 + valid names for unknown names; exit 1 +
    one-line diagnostic (no traceback) for ReproErrors."""

    def test_unknown_benchmark_exits_2_with_valid_names(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "--benchmark", "NOPE"])
        assert err.value.code == 2
        stderr = capsys.readouterr().err
        assert "NOPE" in stderr
        assert "CCS" in stderr and "GDL" in stderr  # the valid names

    def test_unknown_config_exits_2_with_valid_names(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "--benchmark", "CCS", "--config", "magic"])
        assert err.value.code == 2
        stderr = capsys.readouterr().err
        assert "baseline" in stderr and "libra" in stderr

    def test_suite_unknown_benchmark_exits_2(self, capsys):
        code = main(["suite", "--benchmarks", "CCS,NOPE"])
        assert code == 2
        stderr = capsys.readouterr().err
        assert "NOPE" in stderr and "valid:" in stderr and "CCS" in stderr

    def test_repro_error_prints_one_line_diagnostic(self, capsys,
                                                    monkeypatch):
        from repro import cli
        from repro.errors import SimulationError

        def explode(args):
            raise SimulationError("frame 3 of GDL failed")

        monkeypatch.setattr(cli, "cmd_run", explode)
        code = cli.main(["run", "--benchmark", "GDL"])
        assert code == 1
        captured = capsys.readouterr()
        assert "error: SimulationError: frame 3 of GDL failed" \
            in captured.err
        assert "Traceback" not in captured.err

    def test_bug_exceptions_still_propagate(self, monkeypatch):
        # Only ReproErrors are swallowed into diagnostics; a genuine
        # bug must keep its traceback.
        from repro import cli

        def explode(args):
            raise RuntimeError("actual bug")

        monkeypatch.setattr(cli, "cmd_run", explode)
        with pytest.raises(RuntimeError):
            cli.main(["run", "--benchmark", "GDL"])


class TestSuiteCommand:
    def test_suite_runs_and_reports(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["suite", "--benchmarks", "GDL", "--config", "ptr",
                     "--frames", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 ok, 0 failed, 0 skipped" in out
        assert "GDL/ptr" in out

    def test_suite_failure_sets_exit_code(self, capsys, monkeypatch):
        from repro import harness
        from repro.errors import SimulationError

        def explode(benchmark, kind, frames=1, **kw):
            raise SimulationError("injected")

        monkeypatch.setattr(harness, "run_simulation", explode)
        code = main(["suite", "--benchmarks", "GDL", "--frames", "1"])
        assert code == 1
        out = capsys.readouterr().out
        assert "failed" in out and "injected" in out
