"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--benchmark", "CCS"])
        assert args.config == "libra"
        assert args.frames == 8

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "NOPE"])

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmark", "CCS", "--config", "magic"])


class TestCommands:
    def test_list_prints_suite(self, capsys):
        assert main(["--width", "256", "--height", "128", "list"]) == 0
        out = capsys.readouterr().out
        assert "CCS" in out and "GDL" in out

    def test_run_small(self, capsys):
        code = main(["--width", "256", "--height", "128",
                     "run", "--benchmark", "GDL", "--config", "ptr",
                     "--frames", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GDL on ptr" in out
        assert "raster cyc" in out

    def test_compare_small(self, capsys):
        code = main(["--width", "256", "--height", "128",
                     "compare", "--benchmark", "GDL", "--frames", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "libra" in out
        assert "speedup" in out

    def test_heatmap_small(self, capsys):
        code = main(["--width", "256", "--height", "128",
                     "heatmap", "--benchmark", "CCS"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-tile DRAM accesses" in out

    def test_trace_export(self, capsys, tmp_path):
        out_path = str(tmp_path / "t.jsonl.gz")
        code = main(["--width", "256", "--height", "128",
                     "trace", "--benchmark", "GDL", "--frames", "2",
                     "--out", out_path])
        assert code == 0
        from repro.workloads import load_traces
        assert len(load_traces(out_path)) == 2
