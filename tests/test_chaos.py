"""Deterministic chaos harness + fault-tolerant sweep end-to-end tests.

Unit coverage for :mod:`repro.chaos` (plan determinism, env activation,
invocation counters, cache-layer fault arming, quarantine capping) and
the headline invariant: a seeded chaos sweep always terminates and its
surviving points converge to exactly the fault-free metrics.
"""

import errno
import os
from pathlib import Path

import pytest

from repro import cachefile, chaos, supervision
from repro.cachefile import (load_or_quarantine, quarantine, read_cache,
                             write_cache)
from repro.errors import CacheCorruptionError
from repro.experiments import ArtifactStore, ExperimentSpec, run_sweep
from repro.supervision import SupervisionPolicy
from repro.telemetry import HUB


# -- the fault plan ----------------------------------------------------------

class TestChaosPlan:
    def test_fault_for_is_deterministic(self):
        plan = chaos.ChaosPlan(seed=7)
        again = chaos.ChaosPlan(seed=7)
        ids = [f"bench-kind-{i:04x}" for i in range(64)]
        assert [plan.fault_for(p) for p in ids] \
            == [again.fault_for(p) for p in ids]

    def test_different_seeds_differ(self):
        ids = [f"bench-kind-{i:04x}" for i in range(64)]
        a = [chaos.ChaosPlan(seed=1).fault_for(p) for p in ids]
        b = [chaos.ChaosPlan(seed=2).fault_for(p) for p in ids]
        assert a != b

    def test_rate_bounds(self):
        ids = [f"p{i}" for i in range(64)]
        none = chaos.ChaosPlan(seed=3, rate=0.0)
        assert all(none.fault_for(p) is None for p in ids)
        always = chaos.ChaosPlan(seed=3, rate=1.0)
        assert all(always.fault_for(p) in chaos.ALL_FAULTS for p in ids)

    def test_fault_subset_does_not_reshuffle_targets(self):
        # Narrowing the fault list changes *which* fault a hit point
        # gets, never *whether* a point is hit (whether/which use
        # disjoint digest bytes).
        ids = [f"p{i}" for i in range(128)]
        full = chaos.ChaosPlan(seed=11)
        slim = chaos.ChaosPlan(seed=11, faults=("slow",))
        for point_id in ids:
            hit_full = full.fault_for(point_id) is not None
            hit_slim = slim.fault_for(point_id) is not None
            assert hit_full == hit_slim
        assert {slim.fault_for(p) for p in ids} <= {None, "slow"}

    def test_curse_matches_substring(self):
        plan = chaos.ChaosPlan(seed=0, curse="-libra-")
        assert plan.cursed("tri_overlap-libra-0808fe05fafd")
        assert not plan.cursed("tri_overlap-baseline-bbb0953d8941")
        assert not chaos.ChaosPlan(seed=0).cursed("tri_overlap-libra-x")

    def test_session_round_trips_environment(self):
        assert chaos.active() is None
        with chaos.session(5, faults=("slow",), curse="-x-", rate=0.5):
            plan = chaos.active()
            assert plan is not None
            assert (plan.seed, plan.faults, plan.curse, plan.rate) \
                == (5, ("slow",), "-x-", 0.5)
            with chaos.session(6):
                assert chaos.active().seed == 6
            assert chaos.active().seed == 5
        assert chaos.active() is None
        assert chaos.ENV_SEED not in os.environ

    def test_enable_rejects_unknown_fault(self):
        with pytest.raises(ValueError, match="unknown"):
            chaos.enable(1, faults=("crash", "frobnicate"))
        assert chaos.active() is None


# -- per-point invocation counters -------------------------------------------

class TestInvocationCounter:
    def test_counts_up_and_persists_on_disk(self, tmp_path):
        assert chaos.invocation(tmp_path, "p1") == 1
        assert chaos.invocation(tmp_path, "p1") == 2
        assert chaos.invocation(tmp_path, "p2") == 1
        counter = chaos.counter_dir(tmp_path) / "p1.count"
        assert counter.read_text().strip() == "2"

    def test_counter_survives_process_death(self, tmp_path):
        # The file IS the state: a sibling (or resurrected) process
        # continues the same sequence.
        chaos.invocation(tmp_path, "p")
        pid = os.fork()
        if pid == 0:  # child
            n = chaos.invocation(tmp_path, "p")
            os._exit(0 if n == 2 else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        assert chaos.invocation(tmp_path, "p") == 3


# -- cache-layer fault injection ---------------------------------------------

class TestCacheFaults:
    def test_armed_fault_is_single_shot(self):
        chaos.arm_cache_fault("corrupt")
        assert chaos.consume_cache_fault() == "corrupt"
        assert chaos.consume_cache_fault() is None

    def test_corrupt_bytes_changes_payload_same_length(self):
        payload = b"\x00" * 32
        mangled = chaos.corrupt_bytes(payload)
        assert mangled != payload and len(mangled) == len(payload)

    def test_enospc_error_shape(self, tmp_path):
        exc = chaos.enospc_error(tmp_path / "f")
        assert isinstance(exc, OSError) and exc.errno == errno.ENOSPC

    def test_corrupt_write_detected_quarantined_healed(self, tmp_path):
        path = tmp_path / "entry.pkl"
        chaos.arm_cache_fault("corrupt")
        write_cache({"cycles": 123}, path)
        with pytest.raises(CacheCorruptionError, match="checksum"):
            read_cache(path)
        assert load_or_quarantine(path) is None
        assert not path.exists()
        assert (tmp_path / "entry.pkl.corrupt").exists()
        # the rebuilt entry (no fault armed) reads back fine
        write_cache({"cycles": 123}, path)
        assert load_or_quarantine(path) == {"cycles": 123}

    def test_enospc_write_raises_and_leaves_no_file(self, tmp_path):
        path = tmp_path / "entry.pkl"
        chaos.arm_cache_fault("enospc")
        with pytest.raises(OSError) as excinfo:
            write_cache({"x": 1}, path)
        assert excinfo.value.errno == errno.ENOSPC
        assert not path.exists()
        write_cache({"x": 1}, path)  # next write is clean
        assert read_cache(path) == {"x": 1}

    def test_quarantine_population_is_capped(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "3")
        path = tmp_path / "entry.pkl"
        for i in range(7):
            path.write_bytes(b"garbage %d" % i)
            assert quarantine(path, "test") is not None
        corpses = list(tmp_path.glob("*.corrupt*"))
        assert len(corpses) == 3
        # the newest quarantines survive, the oldest were pruned
        contents = {p.read_bytes() for p in corpses}
        assert b"garbage 6" in contents
        assert b"garbage 0" not in contents

    def test_prune_emits_telemetry_counter(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "1")
        path = tmp_path / "entry.pkl"
        HUB.enable()
        try:
            HUB.metrics.counter("cachefile.quarantine.pruned").value = 0
            for i in range(3):
                path.write_bytes(b"garbage %d" % i)
                quarantine(path, "test")
            pruned = HUB.metrics.counter("cachefile.quarantine.pruned")
            assert pruned.value == 2
        finally:
            HUB.disable()


# -- chaos sweeps end to end -------------------------------------------------

SPEC = ExperimentSpec(
    name="chaosgrid", benchmarks=["tri_overlap"],
    kinds=["baseline", "libra"],
    axes={"raster_units": [1, 2]},
    frames=2, width=128, height=64)

# Small grid + real faults: keep hangs short and grace periods tight so
# the preemption path runs in test time, not production time.
POLICY = SupervisionPolicy(hang_grace_s=1.0, deadline_floor_s=10.0)

needs_fork = pytest.mark.skipif(
    not supervision.available(),
    reason="chaos sweeps need supervised (forked) execution")


@pytest.fixture(scope="module", autouse=True)
def chaos_env(tmp_path_factory):
    """Trace cache + short hang sleeps shared by every sweep below."""
    cache = tmp_path_factory.mktemp("chaos_cache")
    old_cache = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    old_hang = chaos.HANG_SLEEP_S
    chaos.HANG_SLEEP_S = 30.0  # forked workers inherit the patch
    from repro import harness
    harness.get_traces("tri_overlap", SPEC.frames, SPEC.width, SPEC.height)
    yield
    chaos.HANG_SLEEP_S = old_hang
    if old_cache is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old_cache


@pytest.fixture(scope="module")
def reference_cycles(tmp_path_factory):
    """Fault-free ground truth for the grid."""
    store = tmp_path_factory.mktemp("clean") / "store"
    clean = run_sweep(SPEC, store_root=store, workers=2)
    assert not clean.failed and not clean.skipped
    return {pid: s.total_cycles for pid, s in clean.summaries().items()}


@needs_fork
@pytest.mark.parametrize("seed", [0, 1, 4])
def test_chaos_sweep_terminates_and_converges(seed, reference_cycles,
                                              tmp_path):
    store = tmp_path / "store"
    with chaos.session(seed):
        result = run_sweep(SPEC, store_root=store, workers=2,
                           policy=POLICY)
    got = {pid: s.total_cycles for pid, s in result.summaries().items()}
    # Every surviving point is bit-identical to the fault-free run —
    # chaos may cost retries, never correctness.
    for point_id, cycles in got.items():
        assert cycles == reference_cycles[point_id]
    # A chaos-free resume on the same store heals anything that failed
    # (corrupt artifacts quarantined and rebuilt) and completes the grid.
    healed = run_sweep(SPEC, store_root=store, workers=2)
    assert not healed.failed and not healed.skipped
    assert {pid: s.total_cycles for pid, s in healed.summaries().items()} \
        == reference_cycles


@needs_fork
def test_crash_after_checkpoint_resumes_not_reruns(reference_cycles,
                                                   tmp_path):
    # Find a seed/point where the fault fires *after* the checkpoint is
    # saved; the retry must then be served from the artifact store.
    plan = chaos.ChaosPlan(seed=4)
    victims = [p.point_id for p in SPEC.expand()
               if plan.fault_for(p.point_id) == "crash_late"]
    assert victims, "seed 4 must crash_late at least one grid point"

    store = tmp_path / "store"
    with chaos.session(4):
        result = run_sweep(SPEC, store_root=store, workers=2,
                           policy=POLICY)
    outcomes = {o.point.point_id: o for o in result.outcomes}
    for point_id in victims:
        outcome = outcomes[point_id]
        assert outcome.ok
        assert reference_cycles[point_id] == outcome.summary.total_cycles
        # The simulation ran exactly once: the post-checkpoint crash's
        # retry hit the store and returned without re-entering the
        # point runner (the invocation counter is incremented only on a
        # genuine execution).
        counter = chaos.counter_dir(store) / f"{point_id}.count"
        assert counter.read_text().strip() == "1"
        assert ArtifactStore(store).point_path(point_id).exists()


@needs_fork
def test_cursed_combination_trips_breaker(reference_cycles, tmp_path):
    store = tmp_path / "store"
    with chaos.session(99, curse="-libra-"):
        result = run_sweep(SPEC, store_root=store, workers=2,
                           policy=POLICY)
    # The systematically failing combination trips; the healthy kind is
    # untouched and still numerically exact.
    assert result.tripped, "cursed kind must trip the circuit breaker"
    assert result.partial
    for outcome in result.outcomes:
        if outcome.point.kind == "baseline":
            assert outcome.ok
            assert reference_cycles[outcome.point.point_id] \
                == outcome.summary.total_cycles
        else:
            assert outcome.status in ("failed", "tripped")
    assert "[PARTIAL]" in result.format()
    assert "tripped" in result.format()
    # The trip is durable: the persisted breaker state quarantines the
    # combination for the next run on this store.
    state = ArtifactStore(store).load_breaker_state()
    assert state is not None
    assert state["cells"]["tri_overlap|libra"]["state"] == "open"


@needs_fork
def test_provenance_lands_in_outcomes(tmp_path):
    # Seed 4 on this grid produces at least one degraded point (crash,
    # corrupt, enospc all force a retry).  Provenance must say so.
    store = tmp_path / "store"
    with chaos.session(4):
        result = run_sweep(SPEC, store_root=store, workers=2,
                           policy=POLICY)
    provenance = result.provenance()
    assert set(provenance) == {p.point_id for p in SPEC.expand()}
    assert "degraded" in provenance.values()
