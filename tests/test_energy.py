"""Tests for the energy model."""

import pytest

from repro.energy.model import (EnergyCounts, EnergyModel, EnergyParams,
                                EnergyReport)


class TestEvaluation:
    def test_zero_counts_zero_energy(self):
        report = EnergyModel().evaluate(EnergyCounts())
        assert report.total_j == 0.0

    def test_static_energy_scales_with_cycles(self):
        model = EnergyModel()
        short = model.evaluate(EnergyCounts(cycles=1_000_000))
        long = model.evaluate(EnergyCounts(cycles=2_000_000))
        assert long.static_j == pytest.approx(2 * short.static_j)

    def test_static_energy_formula(self):
        params = EnergyParams(static_power_w=0.5, frequency_hz=1_000_000)
        report = EnergyModel(params).evaluate(EnergyCounts(cycles=2_000_000))
        assert report.static_j == pytest.approx(1.0)  # 2 s x 0.5 W

    def test_dram_dominates_per_event(self):
        params = EnergyParams()
        assert params.dram_read_nj > params.l2_access_nj > params.l1_access_nj

    def test_dram_energy_counts_all_event_types(self):
        model = EnergyModel()
        report = model.evaluate(EnergyCounts(dram_reads=10, dram_writes=5,
                                             dram_activations=3))
        p = model.params
        expected = (10 * p.dram_read_nj + 5 * p.dram_write_nj
                    + 3 * p.dram_activate_nj) * 1e-9
        assert report.dynamic_dram_j == pytest.approx(expected)

    def test_total_is_sum_of_parts(self):
        report = EnergyModel().evaluate(EnergyCounts(
            core_instructions=1000, l1_accesses=500, l2_accesses=100,
            dram_reads=10, cycles=10_000))
        assert report.total_j == pytest.approx(
            report.dynamic_j + report.static_j)
        assert report.dynamic_j == pytest.approx(
            sum(v for k, v in report.breakdown().items() if k != "static"))

    def test_monotonic_in_events(self):
        model = EnergyModel()
        low = model.evaluate(EnergyCounts(dram_reads=10, cycles=100))
        high = model.evaluate(EnergyCounts(dram_reads=100, cycles=100))
        assert high.total_j > low.total_j


class TestCounts:
    def test_merge(self):
        merged = EnergyCounts(dram_reads=3, cycles=10).merged_with(
            EnergyCounts(dram_reads=4, cycles=5, l1_accesses=2))
        assert merged.dram_reads == 7
        assert merged.cycles == 15
        assert merged.l1_accesses == 2

    def test_breakdown_keys(self):
        report = EnergyModel().evaluate(EnergyCounts(cycles=100))
        assert set(report.breakdown()) == {"core", "l1", "l2", "dram",
                                           "static"}
