"""Tests for the LPDDR4-like DRAM model."""

import pytest

from repro.config import DRAMConfig
from repro.memory.dram import DRAM


def dram(**kwargs):
    return DRAM(DRAMConfig(**kwargs), interval_cycles=1000)


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        d = dram()
        service = d.request(0)
        assert service == 100.0
        assert d.stats.row_misses == 1
        assert d.stats.activations == 1

    def test_same_row_hits(self):
        d = dram()
        d.request(0)
        service = d.request(1)  # same 2KB row
        assert service == 50.0
        assert d.stats.row_hits == 1

    def test_distant_line_maps_to_other_bank_or_row(self):
        d = dram()
        d.request(0)
        d.request(10_000)
        assert d.stats.row_misses == 2

    def test_bank_conflict_reopens_row(self):
        d = dram(num_banks=8)
        lines_per_row = 2048 // 64
        # Rows 0 and 8 share bank 0.
        d.request(0)
        d.request(8 * lines_per_row)
        d.request(0)
        assert d.stats.row_misses == 3

    def test_read_write_counted(self):
        d = dram()
        d.request(0)
        d.request(1, write=True)
        assert d.stats.reads == 1
        assert d.stats.writes == 1


class TestQueueing:
    def test_unloaded_latency_low(self):
        d = dram()
        for line in range(10):
            d.request(line * 100)
        d.end_interval()
        assert d.loaded_latency < 200

    def test_latency_grows_with_utilization(self):
        low = dram()
        for line in range(10):
            low.request(line)
        low.end_interval()

        high = dram()
        capacity = int(high.capacity_per_interval)
        for line in range(int(capacity * 0.95)):
            high.request(line)
        high.end_interval()
        assert high.loaded_latency > low.loaded_latency

    def test_latency_capped(self):
        d = dram(max_queue_factor=8.0)
        for line in range(int(d.capacity_per_interval * 5)):
            d.request(line)
        d.end_interval()
        assert d.loaded_latency <= 100 * 8.0

    def test_overload_builds_backlog(self):
        d = dram()
        for line in range(int(d.capacity_per_interval * 2)):
            d.request(line)
        d.end_interval()
        assert d.backlog > 0
        assert d.drain_cycles() > 0

    def test_backlog_drains_in_idle_intervals(self):
        d = dram()
        for line in range(int(d.capacity_per_interval * 2)):
            d.request(line)
        d.end_interval()
        d.end_interval()  # idle interval serves the backlog
        assert d.backlog == 0

    def test_idle_interval_latency_recovers(self):
        d = dram()
        for line in range(int(d.capacity_per_interval * 0.9)):
            d.request(line)
        d.end_interval()
        inflated = d.loaded_latency
        d.end_interval()
        assert d.loaded_latency < inflated


class TestSeries:
    def test_interval_request_series_recorded(self):
        d = dram()
        d.request(0)
        d.request(1)
        d.end_interval()
        d.end_interval()
        d.request(2)
        d.end_interval()
        assert d.stats.interval_requests == [2, 0, 1]

    def test_utilization_series_bounded(self):
        d = dram()
        for line in range(int(d.capacity_per_interval * 10)):
            d.request(line)
        d.end_interval()
        assert d.stats.interval_utilization[-1] <= 2.0

    def test_reset(self):
        d = dram()
        d.request(0)
        d.end_interval()
        d.reset()
        assert d.stats.accesses == 0
        assert d.stats.interval_requests == []
        assert d.backlog == 0

    def test_row_hit_ratio(self):
        d = dram()
        d.request(0)
        d.request(1)
        d.request(2)
        assert d.stats.row_hit_ratio == pytest.approx(2 / 3)
