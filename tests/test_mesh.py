"""Tests for repro.geometry.mesh."""

import numpy as np
import pytest

from repro.geometry.mesh import (DrawCall, Mesh, ShaderProfile, disk_mesh,
                                 grid_mesh, quad_mesh)


class TestMeshValidation:
    def test_valid_mesh(self):
        mesh = quad_mesh(0, 0, 10, 10)
        assert mesh.num_vertices == 4
        assert mesh.num_triangles == 2

    def test_rejects_bad_positions_shape(self):
        with pytest.raises(ValueError):
            Mesh(np.zeros((3, 2)), np.zeros((3, 2)),
                 np.array([[0, 1, 2]]))

    def test_rejects_mismatched_uvs(self):
        with pytest.raises(ValueError):
            Mesh(np.zeros((4, 3)), np.zeros((3, 2)),
                 np.array([[0, 1, 2]]))

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            Mesh(np.zeros((3, 3)), np.zeros((3, 2)),
                 np.array([[0, 1, 3]]))

    def test_vertex_addresses_are_strided(self):
        mesh = quad_mesh(0, 0, 1, 1, buffer_base=1024)
        assert mesh.vertex_address(0) == 1024
        assert mesh.vertex_address(2) == 1024 + 2 * Mesh.VERTEX_STRIDE


class TestQuadMesh:
    def test_covers_rectangle(self):
        mesh = quad_mesh(5, 7, 10, 20)
        xs = mesh.positions[:, 0]
        ys = mesh.positions[:, 1]
        assert xs.min() == 5 and xs.max() == 15
        assert ys.min() == 7 and ys.max() == 27

    def test_uv_scale_repeats(self):
        mesh = quad_mesh(0, 0, 1, 1, uv_scale=3.0)
        assert mesh.uvs.max() == pytest.approx(3.0)

    def test_uv_rect_window(self):
        mesh = quad_mesh(0, 0, 1, 1, uv_rect=(0.25, 0.5, 0.5, 0.75))
        assert mesh.uvs[:, 0].min() == pytest.approx(0.25)
        assert mesh.uvs[:, 0].max() == pytest.approx(0.5)
        assert mesh.uvs[:, 1].min() == pytest.approx(0.5)
        assert mesh.uvs[:, 1].max() == pytest.approx(0.75)


class TestGridMesh:
    def test_cell_count(self):
        mesh = grid_mesh(0, 0, 10, 10, 4, 3)
        assert mesh.num_triangles == 4 * 3 * 2
        assert mesh.num_vertices == 5 * 4

    def test_rejects_zero_cells(self):
        with pytest.raises(ValueError):
            grid_mesh(0, 0, 1, 1, 0, 1)

    def test_height_function_applied(self):
        mesh = grid_mesh(0, 0, 1, 1, 1, 1, z=1.0,
                         height_fn=lambda u, v: u + v)
        zs = mesh.positions[:, 2]
        assert zs.min() == pytest.approx(1.0)
        assert zs.max() == pytest.approx(3.0)

    def test_uvs_span_unit_square(self):
        mesh = grid_mesh(0, 0, 5, 5, 2, 2)
        assert mesh.uvs.min() == 0.0
        assert mesh.uvs.max() == 1.0


class TestDiskMesh:
    def test_triangle_count_matches_segments(self):
        mesh = disk_mesh(0, 0, 1, segments=8)
        assert mesh.num_triangles == 8

    def test_rejects_too_few_segments(self):
        with pytest.raises(ValueError):
            disk_mesh(0, 0, 1, segments=2)

    def test_radius_respected(self):
        mesh = disk_mesh(10, 10, 3, segments=16)
        d = np.linalg.norm(mesh.positions[1:, :2] - [10, 10], axis=1)
        assert np.allclose(d, 3.0)


class TestShaderProfile:
    def test_defaults_positive(self):
        p = ShaderProfile()
        assert p.fragment_instructions > 0

    def test_rejects_negative_instructions(self):
        with pytest.raises(ValueError):
            ShaderProfile(fragment_instructions=-1)

    def test_rejects_negative_fetches(self):
        with pytest.raises(ValueError):
            ShaderProfile(texture_fetches=-1)


class TestDrawCall:
    def test_rejects_unknown_blend(self):
        with pytest.raises(ValueError):
            DrawCall(mesh=quad_mesh(0, 0, 1, 1), blend="screen")

    def test_rejects_bad_matrix_shape(self):
        with pytest.raises(ValueError):
            DrawCall(mesh=quad_mesh(0, 0, 1, 1),
                     model_matrix=np.eye(3))

    def test_accepts_model_matrix(self):
        call = DrawCall(mesh=quad_mesh(0, 0, 1, 1), model_matrix=np.eye(4))
        assert call.model_matrix.shape == (4, 4)
