"""Property tests bounding texture footprints against screen coverage.

The timing model's DRAM demand comes from per-tile texture-line
footprints; these properties pin the relationship between screen
coverage, texel density and footprint size that the workload design
relies on (docs/workloads.md).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geometry.mesh import DrawCall, ShaderProfile, quad_mesh
from repro.geometry.pipeline import GeometryPipeline
from repro.geometry.vecmath import orthographic
from repro.raster.pipeline import RasterPipeline
from repro.raster.texture import TEXELS_PER_LINE, TextureSet
from repro.tiling.engine import TilingEngine

CAMERA = orthographic(0.0, 128.0, 0.0, 128.0, -10.0, 10.0)


def render_tile_footprints(size_px, window_span, fetches=1):
    """Footprint lines of one sprite sampling a UV window."""
    textures = TextureSet()
    textures.add(256, 256, seed=0)
    textures.add(256, 256, seed=1)
    draw = DrawCall(
        mesh=quad_mesh(4, 4, size_px, size_px,
                       uv_rect=(0.1, 0.1, 0.1 + window_span,
                                0.1 + window_span)),
        texture_id=0,
        shader=ShaderProfile(texture_fetches=fetches))
    geometry = GeometryPipeline(128, 128).run([draw], CAMERA)
    tiled = TilingEngine(4, 4, 32).tile_frame(geometry.primitives)
    pipeline = RasterPipeline(128, 128, 32, textures, shade_colors=False)
    lines = []
    fragments = 0
    for tile in tiled.default_order:
        result = pipeline.process_tile(tile, tiled.primitives_for(tile))
        lines.extend(result.texture_lines)
        fragments += result.fragments_shaded
    return lines, fragments


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(size_px=st.integers(8, 100))
def test_native_density_footprint_tracks_coverage(size_px):
    """At ~1 texel/pixel, total footprint lines ~= pixels / 16."""
    window = size_px / 256.0  # 1:1 texel density on a 256 texture
    lines, fragments = render_tile_footprints(size_px, window)
    assert fragments > 0
    expected = fragments / TEXELS_PER_LINE
    # Block misalignment and tile splitting inflate the footprint by a
    # bounded factor; it can never exceed ~4x nor undershoot ~1/4.
    assert expected / 4 <= len(lines) <= 4 * expected + 8


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(size_px=st.integers(16, 100))
def test_mip_chain_normalizes_minified_footprint(size_px):
    """A whole-texture window (massively minified) costs about the same
    lines as a native 1:1 window: the mip chain collapses the sampled
    density back to ~1 texel/pixel.  Without mips it would cost the full
    4096-line level-0 footprint."""
    native_lines, fragments = render_tile_footprints(
        size_px, size_px / 256.0)
    minified_lines, _ = render_tile_footprints(size_px, 1.0)
    if fragments >= 64:
        # Mip selection keeps the density in [1, 4) texels/pixel, so the
        # footprint is within ~4x of native (block alignment adds slack)
        # rather than the full 4096-line level-0 footprint.
        assert len(minified_lines) <= 3 * len(native_lines) + 32
        assert len(minified_lines) <= 4 * fragments / 16 * 2 + 64


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(size_px=st.integers(16, 80), fetches=st.integers(1, 4))
def test_multitexturing_scales_footprint(size_px, fetches):
    """k sampled maps cost ~k distinct footprints."""
    one, fragments = render_tile_footprints(size_px, size_px / 256.0, 1)
    many, _ = render_tile_footprints(size_px, size_px / 256.0, fetches)
    if fragments >= 64:
        assert len(many) >= fetches * len(one) * 0.8
        assert len(many) <= fetches * len(one) * 1.2 + 8


def test_footprints_are_real_texture_lines():
    textures = TextureSet()
    first = textures.add(256, 256, seed=0)
    lines, _ = render_tile_footprints(64, 0.25)
    base = first.base_address // 64
    end = base + first.size_bytes() // 64
    assert all(base <= line < end for line in lines)
