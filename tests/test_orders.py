"""Tests for tile traversal orders (Morton/scanline/Hilbert)."""

import pytest
from hypothesis import given, strategies as st

from repro.tiling.orders import (boustrophedon_order, hilbert_order,
                                 iter_order_names, morton_decode,
                                 morton_encode, morton_order,
                                 scanline_order, traversal_order)

grid_dims = st.integers(min_value=1, max_value=40)


class TestMortonCode:
    def test_known_values(self):
        assert morton_encode(0, 0) == 0
        assert morton_encode(1, 0) == 1
        assert morton_encode(0, 1) == 2
        assert morton_encode(1, 1) == 3
        assert morton_encode(2, 0) == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            morton_encode(-1, 0)
        with pytest.raises(ValueError):
            morton_decode(-1)

    @given(x=st.integers(0, 10_000), y=st.integers(0, 10_000))
    def test_roundtrip(self, x, y):
        assert morton_decode(morton_encode(x, y)) == (x, y)

    @given(code=st.integers(0, 1_000_000))
    def test_inverse_roundtrip(self, code):
        x, y = morton_decode(code)
        assert morton_encode(x, y) == code

    def test_z_pattern_for_2x2(self):
        assert morton_order(2, 2) == [(0, 0), (1, 0), (0, 1), (1, 1)]


class TestPermutationProperty:
    @given(tx=grid_dims, ty=grid_dims,
           name=st.sampled_from(["scanline", "morton", "hilbert",
                                 "boustrophedon"]))
    def test_every_order_is_a_permutation(self, tx, ty, name):
        order = traversal_order(name, tx, ty)
        assert len(order) == tx * ty
        assert len(set(order)) == tx * ty
        for x, y in order:
            assert 0 <= x < tx and 0 <= y < ty


class TestScanline:
    def test_row_major(self):
        assert scanline_order(3, 2) == [(0, 0), (1, 0), (2, 0),
                                        (0, 1), (1, 1), (2, 1)]


class TestBoustrophedon:
    def test_alternating_rows(self):
        order = boustrophedon_order(3, 2)
        assert order[:3] == [(0, 0), (1, 0), (2, 0)]
        assert order[3:] == [(2, 1), (1, 1), (0, 1)]

    @given(tx=grid_dims, ty=grid_dims)
    def test_adjacent_steps_are_neighbors(self, tx, ty):
        order = boustrophedon_order(tx, ty)
        for (x0, y0), (x1, y1) in zip(order, order[1:]):
            assert abs(x0 - x1) + abs(y0 - y1) == 1


class TestHilbert:
    @given(side=st.sampled_from([2, 4, 8, 16]))
    def test_square_grid_steps_are_neighbors(self, side):
        order = hilbert_order(side, side)
        for (x0, y0), (x1, y1) in zip(order, order[1:]):
            assert abs(x0 - x1) + abs(y0 - y1) == 1


class TestLookup:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            traversal_order("spiral", 4, 4)

    def test_zorder_alias(self):
        assert traversal_order("zorder", 4, 4) == traversal_order(
            "morton", 4, 4)

    def test_iter_names(self):
        names = list(iter_order_names())
        assert "morton" in names and "hilbert" in names
