"""Tests for the experiment harness (configs, caching, summaries)."""

import pytest

from repro import harness
from repro.core import (LibraScheduler, StaticSupertileScheduler,
                        TemperatureScheduler, ZOrderScheduler)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestMakeConfig:
    """The deprecated shim keeps the old contract (via GPUConfig.build)."""

    def test_shim_warns(self):
        with pytest.warns(DeprecationWarning, match="GPUConfig.build"):
            harness.make_config("libra")

    def test_matches_build(self):
        from repro.config import GPUConfig
        config, scheduler = harness.make_config("libra", raster_units=3)
        built, built_sched = GPUConfig.build("libra", raster_units=3,
                                             screen_width=960,
                                             screen_height=512)
        assert config == built
        assert type(scheduler) is type(built_sched)

    def test_baseline_merges_cores(self):
        config, scheduler = harness.make_config("baseline",
                                                raster_units=2,
                                                cores_per_unit=4)
        assert config.num_raster_units == 1
        assert config.raster_unit.num_cores == 8
        assert scheduler is None

    def test_baseline_fixed_cores(self):
        config, _ = harness.make_config("baseline4")
        assert config.raster_unit.num_cores == 4

    def test_ptr(self):
        config, scheduler = harness.make_config("ptr")
        assert config.num_raster_units == 2
        assert isinstance(scheduler, ZOrderScheduler)

    def test_libra(self):
        config, scheduler = harness.make_config("libra")
        assert isinstance(scheduler, LibraScheduler)

    def test_temperature_with_size(self):
        _, scheduler = harness.make_config("temperature8")
        assert isinstance(scheduler, TemperatureScheduler)
        assert scheduler.size == 8

    def test_supertile_with_size(self):
        _, scheduler = harness.make_config("supertile4")
        assert isinstance(scheduler, StaticSupertileScheduler)
        assert scheduler.size == 4

    def test_more_raster_units(self):
        config, _ = harness.make_config("libra", raster_units=3)
        assert config.num_raster_units == 3
        assert config.total_cores == 12

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            harness.make_config("quantum")


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    """One cache directory for the whole module so runs are shared."""
    import os
    path = tmp_path_factory.mktemp("repro_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


class TestCachedRuns:
    @pytest.fixture(autouse=True)
    def _use_shared_cache(self, shared_cache_dir):
        self.cache_path = shared_cache_dir

    def test_run_and_summary(self):
        summary = harness.run_simulation("GDL", "ptr", frames=2)
        assert summary.benchmark == "GDL"
        assert summary.total_cycles > 0
        assert len(summary.frame_cycles) == 2
        assert summary.per_tile_dram_last

    def test_cache_hit_identical(self):
        first = harness.run_simulation("GDL", "ptr", frames=2)
        second = harness.run_simulation("GDL", "ptr", frames=2)
        assert first.total_cycles == second.total_cycles

    def test_traces_cached_on_disk(self):
        harness.get_traces("GDL", frames=1)
        assert any(p.name.startswith("trace-")
                   for p in self.cache_path.iterdir())

    def test_speedup_between_summaries(self):
        base = harness.run_simulation("GDL", "baseline", frames=2)
        ptr = harness.run_simulation("GDL", "ptr", frames=2)
        assert ptr.speedup_over(base) > 0.5

    def test_memory_time_fraction_bounds(self):
        fraction = harness.memory_time_fraction("GDL", frames=2)
        assert 0.0 <= fraction < 1.0
