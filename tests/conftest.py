"""Shared fixtures for the test suite.

Tests run at tiny resolutions (128-256 px) so the whole suite stays fast;
experiment-scale behaviour is exercised by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GPUConfig, RasterUnitConfig, small_config
from repro.geometry import DrawCall, ShaderProfile, quad_mesh
from repro.geometry.vecmath import orthographic
from repro.raster.texture import TextureSet


@pytest.fixture
def tiny_config() -> GPUConfig:
    """A 128x128, 4-tile-per-side configuration for unit tests."""
    cfg = small_config(screen_width=128, screen_height=128, tile_size=32)
    return cfg


@pytest.fixture
def dual_ru_config() -> GPUConfig:
    cfg = small_config(screen_width=128, screen_height=128, tile_size=32,
                       num_raster_units=2,
                       raster_unit=RasterUnitConfig(num_cores=4))
    return cfg


@pytest.fixture
def textures() -> TextureSet:
    ts = TextureSet()
    ts.add(64, 64, seed=1, style="noise")
    ts.add(64, 64, seed=2, style="checker")
    ts.add(128, 128, seed=3, style="gradient")
    return ts


@pytest.fixture
def ortho_camera() -> np.ndarray:
    """Pixel-space orthographic camera for a 128x128 screen."""
    return orthographic(0.0, 128.0, 0.0, 128.0, -10.0, 10.0)


def make_sprite(x: float, y: float, size: float, texture_id: int = 0,
                z: float = 0.0, uv_rect=None, blend: str = "opaque",
                fragment_instructions: int = 8,
                texture_fetches: int = 1) -> DrawCall:
    """A square textured sprite draw call (module-level test helper)."""
    return DrawCall(
        mesh=quad_mesh(x, y, size, size, z=z, uv_rect=uv_rect),
        texture_id=texture_id,
        shader=ShaderProfile(fragment_instructions=fragment_instructions,
                             texture_fetches=texture_fetches),
        blend=blend,
        depth_write=(blend == "opaque"),
    )


@pytest.fixture
def sprite_factory():
    return make_sprite
