"""SIGKILL-resume semantics of ``repro sweep`` (the acceptance scenario).

A real subprocess runs an 8-point grid, gets SIGKILL'd mid-grid, and the
resumed sweep must (a) not re-execute points whose artifacts survived
the kill and (b) produce exactly the matrix an uninterrupted run would.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.experiments import ArtifactStore, ExperimentSpec, run_sweep

SRC = Path(__file__).resolve().parent.parent / "src"

SPEC = ExperimentSpec(
    name="killgrid", benchmarks=["tri_overlap"],
    kinds=["baseline", "libra"],
    axes={"raster_units": [1, 2], "supertile": [2, 4]},
    frames=2, width=128, height=64)

DRIVER = textwrap.dedent("""
    import sys, time
    sys.path.insert(0, {src!r})
    import repro.experiments.engine as engine
    from repro.experiments import ExperimentSpec, run_sweep

    # Slow each point down so the parent has a reliable kill window.
    original = engine.execute_point
    def slowed(point):
        time.sleep(0.4)
        return original(point)
    engine.execute_point = slowed

    spec = ExperimentSpec.from_dict({spec!r})
    run_sweep(spec, store_root={store!r}, workers=1)
""")


@pytest.fixture(scope="module")
def sweep_env(tmp_path_factory):
    """Shared trace cache + env for the driver subprocess and the test."""
    cache = tmp_path_factory.mktemp("resume_cache")
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache),
               PYTHONPATH=str(SRC))
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    # Prebuild the traces so every sweep point in the subprocess is a
    # quick simulate, keeping the kill timing about the grid, not the
    # trace build.
    from repro import harness
    harness.get_traces("tri_overlap", SPEC.frames, SPEC.width, SPEC.height)
    yield env
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


def test_sigkill_midgrid_then_resume(sweep_env, tmp_path):
    store_root = tmp_path / "store"
    driver = DRIVER.format(src=str(SRC), spec=SPEC.to_dict(),
                           store=str(store_root))
    proc = subprocess.Popen([sys.executable, "-c", driver], env=sweep_env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    store = ArtifactStore(store_root)
    try:
        # Wait for at least one checkpoint, then kill the driver cold.
        deadline = time.time() + 60
        while not store.completed_ids():
            assert time.time() < deadline, "no artifact appeared in 60s"
            assert proc.poll() is None, "driver exited before the kill"
            time.sleep(0.02)
        proc.send_signal(signal.SIGKILL)
    finally:
        proc.wait(timeout=30)

    survivors = store.completed_ids()
    assert survivors, "the kill test needs >= 1 completed point"
    assert len(survivors) < SPEC.num_points, \
        "driver finished the whole grid before the kill; nothing resumes"
    mtimes = {pid: store.point_path(pid).stat().st_mtime_ns
              for pid in survivors}

    resumed = run_sweep(SPEC, store_root=store_root)
    assert not resumed.failed and not resumed.skipped
    assert len(resumed.completed) == SPEC.num_points
    assert sorted(o.point.point_id for o in resumed.resumed) == survivors
    # Completed points were served from their checkpoints, not re-run.
    for pid in survivors:
        assert store.point_path(pid).stat().st_mtime_ns == mtimes[pid]

    # The resumed matrix is indistinguishable from an uninterrupted run.
    from repro.experiments import speedup_matrix
    clean = run_sweep(SPEC, store_root=tmp_path / "clean_store")
    resumed_rows = speedup_matrix(resumed).rows
    clean_rows = speedup_matrix(clean).rows
    assert [(r.benchmark, r.axes, r.cycles) for r in resumed_rows] \
        == [(r.benchmark, r.axes, r.cycles) for r in clean_rows]


def test_interrupted_sweep_reports_skipped(sweep_env, tmp_path, monkeypatch):
    """KeyboardInterrupt mid-grid still returns, untouched points skipped."""
    import repro.experiments.engine as engine
    original = engine.execute_point
    calls = []

    def explode_after_two(point):
        if len(calls) == 2:
            raise KeyboardInterrupt
        calls.append(point.point_id)
        return original(point)

    monkeypatch.setattr(engine, "execute_point", explode_after_two)
    result = run_sweep(SPEC, store_root=tmp_path / "store")
    assert len(result.completed) == 2
    # The interrupted point reports the interrupt; the rest are skipped.
    assert [o.error_type for o in result.failed] == ["KeyboardInterrupt"]
    assert len(result.skipped) == SPEC.num_points - 3
    # And those two checkpoints resume on the next, uninterrupted run.
    monkeypatch.setattr(engine, "execute_point", original)
    healed = run_sweep(SPEC, store_root=tmp_path / "store")
    assert len(healed.resumed) == 2
    assert len(healed.completed) == SPEC.num_points
