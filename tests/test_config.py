"""Tests for repro.config (Table I parameters and validation)."""

import dataclasses

import pytest

from repro.config import (CACHE_LINE_BYTES, CacheConfig, DRAMConfig,
                          GPUConfig, RasterUnitConfig, SchedulerConfig,
                          baseline_config, libra_config, small_config)


class TestCacheConfig:
    def test_table1_texture_cache_geometry(self):
        cache = CacheConfig(32 * 1024, 4)
        assert cache.num_lines == 512
        assert cache.num_sets == 128

    def test_table1_l2_geometry(self):
        cache = CacheConfig(2 * 1024 * 1024, 8)
        assert cache.num_lines == 32768
        assert cache.num_sets == 4096

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 2).validate()

    def test_rejects_bad_way_division(self):
        with pytest.raises(ValueError):
            CacheConfig(64 * 3, 2).validate()

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(64 * 12, 2).validate()

    def test_valid_config_passes(self):
        CacheConfig(4 * 1024, 2).validate()


class TestDRAMConfig:
    def test_defaults_valid(self):
        DRAMConfig().validate()

    def test_latency_range_matches_table1(self):
        dram = DRAMConfig()
        assert dram.row_hit_cycles == 50
        assert dram.row_miss_cycles == 100

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ValueError):
            DRAMConfig(num_banks=3).validate()

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            DRAMConfig(requests_per_cycle=0.0).validate()

    def test_rejects_partial_line_rows(self):
        with pytest.raises(ValueError):
            DRAMConfig(row_bytes=100).validate()


class TestGPUConfig:
    def test_default_is_full_hd(self):
        cfg = GPUConfig()
        assert (cfg.screen_width, cfg.screen_height) == (1920, 1080)

    def test_full_hd_tile_grid(self):
        cfg = GPUConfig()
        assert cfg.tiles_x == 60
        assert cfg.tiles_y == 34
        assert cfg.num_tiles == 2040

    def test_partial_tiles_rounded_up(self):
        cfg = small_config(screen_width=100, screen_height=70, tile_size=32)
        assert cfg.tiles_x == 4
        assert cfg.tiles_y == 3

    def test_baseline_preset_has_one_unit_eight_cores(self):
        cfg = baseline_config()
        assert cfg.num_raster_units == 1
        assert cfg.raster_unit.num_cores == 8
        assert cfg.total_cores == 8

    def test_libra_preset_has_two_units_four_cores(self):
        cfg = libra_config()
        assert cfg.num_raster_units == 2
        assert cfg.raster_unit.num_cores == 4
        assert cfg.total_cores == 8

    def test_libra_preset_scales_units(self):
        cfg = libra_config(num_raster_units=4)
        assert cfg.total_cores == 16

    def test_rejects_non_power_of_two_tile(self):
        with pytest.raises(ValueError):
            small_config(tile_size=20)

    def test_rejects_zero_raster_units(self):
        cfg = GPUConfig(num_raster_units=0)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_rejects_zero_interval(self):
        cfg = GPUConfig(interval_cycles=0)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_replace_returns_modified_copy(self):
        cfg = baseline_config()
        other = cfg.replace(tile_size=16)
        assert other.tile_size == 16
        assert cfg.tile_size == 32

    def test_cache_line_is_64_bytes(self):
        assert CACHE_LINE_BYTES == 64


class TestSchedulerConfig:
    def test_paper_thresholds(self):
        sched = SchedulerConfig()
        assert sched.hit_ratio_threshold == pytest.approx(0.80)
        assert sched.order_switch_threshold == pytest.approx(0.03)
        assert sched.supertile_resize_threshold == pytest.approx(0.0025)

    def test_paper_supertile_sizes(self):
        assert SchedulerConfig().supertile_sizes == (2, 4, 8, 16)

    def test_raster_unit_defaults(self):
        ru = RasterUnitConfig()
        assert ru.num_cores == 4
        assert ru.tile_setup_cycles > 0
