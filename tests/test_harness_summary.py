"""Tests for RunSummary metrics and suite classification helpers."""

import pickle

import pytest

from repro import GPUSimulator, harness
from repro.config import RasterUnitConfig, small_config
from repro.gpu.workload import FrameTrace, TileWorkload


def tiny_run(frames=3):
    traces = []
    for index in range(frames):
        workloads = {
            (x, y): TileWorkload(
                tile=(x, y), instructions=1500, fragments=180,
                texture_lines=[(y * 2 + x) * 500 + i + index
                               for i in range(12)],
                texture_fetches=24, num_primitives=1,
                prim_fragments=[180], prim_instructions=[1500])
            for x in range(2) for y in range(2)}
        traces.append(FrameTrace(frame_index=index, tiles_x=2, tiles_y=2,
                                 tile_size=32, workloads=workloads,
                                 geometry_cycles=400))
    cfg = small_config(num_raster_units=2,
                       raster_unit=RasterUnitConfig(num_cores=4))
    return harness.summarize("tiny", "ptr",
                             GPUSimulator(cfg).run(traces))


class TestRunSummary:
    def test_fields_populated(self):
        summary = tiny_run()
        assert summary.total_cycles > 0
        assert summary.frames == 3
        assert len(summary.frame_cycles) == 3
        assert summary.geometry_cycles == 1200
        assert summary.fps > 0
        assert summary.energy_j > 0
        assert set(summary.energy_breakdown) == {"core", "l1", "l2",
                                                 "dram", "static"}

    def test_per_tile_maps_present(self):
        summary = tiny_run()
        assert len(summary.per_tile_dram_last) == 4
        assert len(summary.per_tile_dram_prev) == 4

    def test_single_frame_prev_equals_last(self):
        summary = tiny_run(frames=1)
        assert summary.per_tile_dram_prev == summary.per_tile_dram_last

    def test_speedup_symmetry(self):
        a = tiny_run()
        assert a.speedup_over(a) == pytest.approx(1.0)

    def test_picklable(self):
        summary = tiny_run()
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.total_cycles == summary.total_cycles
        assert clone.per_tile_dram_last == summary.per_tile_dram_last


class TestClassifySuite:
    def test_classify_runs_on_tiny_suite(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        fractions = harness.classify_suite(["GDL"], frames=1)
        assert set(fractions) == {"GDL"}
        assert 0.0 <= fractions["GDL"] < 1.0
