"""Tests for TileWorkload / FrameTrace descriptors."""

import pytest

from repro.gpu.workload import FrameTrace, TileWorkload


def workload(tile=(0, 0), instructions=100, lines=None, fetches=10):
    return TileWorkload(tile=tile, instructions=instructions,
                        fragments=10,
                        texture_lines=list(lines or [1, 2, 3]),
                        texture_fetches=fetches)


class TestTileWorkload:
    def test_repeat_fetches(self):
        w = workload(lines=[1, 2, 3], fetches=10)
        assert w.repeat_fetches == 7

    def test_repeat_fetches_never_negative(self):
        w = workload(lines=[1, 2, 3], fetches=1)
        assert w.repeat_fetches == 0

    def test_validate_rejects_negative(self):
        w = workload(instructions=-1)
        with pytest.raises(ValueError):
            w.validate()

    def test_empty_workload_valid(self):
        TileWorkload(tile=(0, 0)).validate()


class TestFrameTrace:
    def _trace(self):
        workloads = {(0, 0): workload((0, 0), instructions=100),
                     (1, 0): workload((1, 0), instructions=50)}
        return FrameTrace(frame_index=0, tiles_x=2, tiles_y=2,
                          tile_size=32, workloads=workloads,
                          geometry_cycles=500)

    def test_all_tiles_covers_grid(self):
        trace = self._trace()
        assert len(trace.all_tiles()) == 4
        assert trace.num_tiles == 4

    def test_workload_for_missing_tile_is_empty(self):
        trace = self._trace()
        w = trace.workload_for((1, 1))
        assert w.instructions == 0
        assert w.texture_lines == []

    def test_workload_for_existing_tile(self):
        trace = self._trace()
        assert trace.workload_for((0, 0)).instructions == 100

    def test_totals(self):
        trace = self._trace()
        assert trace.total_instructions() == 150
        assert trace.total_fragments() == 20
        assert trace.total_texture_lines() == 6

    def test_per_tile_metric(self):
        trace = self._trace()
        metric = trace.per_tile_metric("instructions")
        assert metric[(0, 0)] == 100.0
        with pytest.raises(ValueError):
            trace.per_tile_metric("bogus")
