"""Tests for the 32-benchmark suite (Table II reconstruction)."""

import pytest

from repro.workloads.suite import (BENCHMARKS, benchmark_names,
                                   compute_intensive_names, get_params,
                                   make_scene_builder,
                                   memory_intensive_names, table2_rows)


class TestSuiteComposition:
    def test_thirty_two_benchmarks(self):
        assert len(BENCHMARKS) == 32

    def test_sixteen_sixteen_split(self):
        assert len(memory_intensive_names()) == 16
        assert len(compute_intensive_names()) == 16

    def test_paper_codes_present(self):
        for code in ("CCS", "SuS", "HCR", "AAt", "GrT", "BlB", "CoC",
                     "Gra", "RoK", "BBR", "AmU", "GDL", "HoW", "RoM",
                     "CrS", "Jet"):
            assert code in BENCHMARKS

    def test_paper_memory_classes_respected(self):
        # Benchmarks the paper shows in memory-intensive figures.
        for code in ("CCS", "SuS", "GrT", "BlB", "AAt", "HoW"):
            assert get_params(code).memory_intensive
        for code in ("GDL", "CrS", "Jet"):
            assert not get_params(code).memory_intensive

    def test_styles_cover_2d_25d_3d(self):
        styles = {p.style for p in BENCHMARKS.values()}
        assert styles == {"2D", "2.5D", "3D"}

    def test_unique_seeds(self):
        seeds = [p.seed for p in BENCHMARKS.values()]
        assert len(set(seeds)) == len(seeds)

    def test_all_params_construct(self):
        for params in BENCHMARKS.values():
            assert params.total_sprites > 0

    def test_memory_benchmarks_have_detailed_hotspots(self):
        for name in memory_intensive_names():
            params = get_params(name)
            assert params.hotspots, name
            assert all(h.uv_scale >= 1.0 for h in params.hotspots)

    def test_compute_benchmarks_have_long_shaders(self):
        memory_avg = sum(get_params(n).fragment_instructions
                         for n in memory_intensive_names()) / 16
        compute_avg = sum(get_params(n).fragment_instructions
                          for n in compute_intensive_names()) / 16
        assert compute_avg > 3 * memory_avg


class TestLookup:
    def test_get_params(self):
        assert get_params("CCS").name == "CCS"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_params("XXX")

    def test_names_order_stable(self):
        assert benchmark_names() == list(BENCHMARKS)


class TestSceneBuilders:
    def test_builder_constructs_for_every_benchmark(self):
        for name in benchmark_names():
            builder = make_scene_builder(name, 256, 128)
            scene = builder.frame(0)
            assert scene.draws

    def test_table2_rows(self):
        rows = table2_rows(256, 128, names=["CCS", "GDL"])
        assert len(rows) == 2
        ccs, gdl = rows
        assert ccs["memory_intensive"] and not gdl["memory_intensive"]
        assert ccs["texture_mb"] > gdl["texture_mb"]
