"""Fault-injection helpers for the resilience test suite.

Small, deliberately-nasty utilities that damage cache files, interrupt
writes mid-stream, skew trace formats, and fail benchmark runs on a
schedule — so :mod:`tests.test_fault_injection` can prove every layer of
the execution stack degrades the way ``docs/robustness.md`` specifies
instead of crashing or serving corrupt data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Type

from repro.gpu.workload import FrameTrace, TileWorkload
from repro.workloads.params import HotspotSpec, WorkloadParams
from repro.workloads.scene import SceneBuilder
from repro.workloads.traces import TraceBuilder


# -- file-level faults -------------------------------------------------------

def truncate_file(path: Path, keep_fraction: float = 0.5) -> None:
    """Cut a file short, as a crashed writer or full disk would."""
    data = path.read_bytes()
    path.write_bytes(data[:max(int(len(data) * keep_fraction), 1)])


def bit_flip(path: Path, offset: int = -1) -> None:
    """Flip one bit of a file (default: in the payload's last byte)."""
    data = bytearray(path.read_bytes())
    data[offset] ^= 0x01
    path.write_bytes(bytes(data))


def skew_trace_version(path: Path, version: int = 999) -> None:
    """Rewrite a JSON-lines trace file claiming a future format version."""
    lines = []
    for line in path.read_text().splitlines():
        if line.strip():
            record = json.loads(line)
            record["version"] = version
            lines.append(json.dumps(record))
    path.write_text("\n".join(lines))


class ExplodesMidPickle:
    """An object whose pickling fails partway through the stream.

    Simulates a writer dying mid-write: by the time the failure hits,
    real payload bytes have already been produced.  The atomic-write
    contract requires that none of them ever become visible under the
    final cache-entry name.
    """

    def __init__(self, payload_items: int = 1000):
        self.padding = list(range(payload_items))

    def __reduce__(self):
        raise IOError("injected: writer died mid-stream")


# -- workload-level faults ---------------------------------------------------

def tiny_params(**overrides) -> WorkloadParams:
    """A minimal valid benchmark parameter set (fast to trace)."""
    defaults = dict(
        name="TST", title="Test", style="2D", seed=7,
        memory_intensive=True, roaming_sprites=3,
        hotspots=(HotspotSpec(center=(0.5, 0.5), sprites=2, layers=2),),
        hud_elements=1, num_textures=3,
        texture_size=64, detail_texture_size=64,
        scroll_speed=8.0,
    )
    defaults.update(overrides)
    return WorkloadParams(**defaults)


def tiny_builder(**overrides) -> TraceBuilder:
    """A TraceBuilder over :func:`tiny_params` at 128x64 (8 tiles)."""
    params = tiny_params(**overrides)
    return TraceBuilder(SceneBuilder(params, 128, 64), 128, 64, 32)


def valid_trace(frame_index: int = 0) -> FrameTrace:
    """A small hand-built trace that passes ``FrameTrace.validate``."""
    workloads = {
        (0, 0): TileWorkload(
            tile=(0, 0), instructions=100, fragments=10,
            texture_lines=[1, 2, 3], texture_fetches=12,
            pb_lines=[7], fb_lines=[9], num_primitives=1,
            prim_fragments=[10], prim_instructions=[100]),
    }
    return FrameTrace(frame_index=frame_index, tiles_x=2, tiles_y=2,
                      tile_size=32, workloads=workloads,
                      geometry_cycles=50, vertex_lines=[0, 1],
                      vertex_instructions=8)


# -- run-level faults --------------------------------------------------------

class ScriptedRunner:
    """A ``run_suite`` runner that fails on a per-benchmark script.

    ``script`` maps a benchmark code to a list of exception *types* to
    raise on successive attempts; once the list is exhausted (or for
    benchmarks not in the script) the runner returns a stub summary.
    """

    def __init__(self, script: dict):
        self.script = {name: list(excs) for name, excs in script.items()}
        self.calls: List[tuple] = []

    def __call__(self, benchmark: str, kind: str, frames: int = 1, **kw):
        self.calls.append((benchmark, kind))
        pending: List[Type[BaseException]] = self.script.get(benchmark, [])
        if pending:
            raise pending.pop(0)(f"injected failure for {benchmark}")
        from repro.harness import RunSummary
        return RunSummary(
            benchmark=benchmark, kind=kind, frames=frames,
            total_cycles=1000, geometry_cycles=100, raster_cycles=900,
            fps=60.0, energy_j=0.1, energy_breakdown={},
            raster_dram_accesses=10, texture_hit_ratio=0.9,
            texture_latency=5.0, frame_cycles=[1000], frame_orders=["Z"],
            frame_supertile_sizes=[4], frame_hit_ratios=[0.9],
            frame_dram=[10], last_frame_intervals=[],
            per_tile_dram_prev={}, per_tile_dram_last={})


def sleepy_runner(seconds: float):
    """A runner that hangs, for exercising the wall-clock timeout."""
    def run(benchmark, kind, frames=1, **kw):
        import time
        time.sleep(seconds)
        raise AssertionError("timeout should have fired")
    return run
