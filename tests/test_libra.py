"""Tests for the full LIBRA controller."""

import pytest

from repro.config import SchedulerConfig
from repro.core.libra import LibraScheduler
from repro.core.scheduler import FrameFeedback
from repro.gpu.workload import FrameTrace


def trace(tiles_x=8, tiles_y=8):
    return FrameTrace(frame_index=0, tiles_x=tiles_x, tiles_y=tiles_y,
                      tile_size=32, workloads={}, geometry_cycles=50_000)


def feedback(cycles=100_000, hit=0.5, hot=(7, 7), cold=(0, 0)):
    return FrameFeedback(
        frame_index=0, raster_cycles=cycles, texture_hit_ratio=hit,
        per_tile_dram={hot: 500, cold: 1},
        per_tile_instructions={hot: 1000, cold: 1000})


def make(num_rus=2):
    scheduler = LibraScheduler(SchedulerConfig())
    scheduler.configure(num_rus)
    return scheduler


class TestLifecycle:
    def test_first_frame_is_zorder(self):
        decision = make().begin_frame(trace())
        assert decision.order == "zorder"

    def test_low_hit_ratio_engages_temperature(self):
        s = make()
        s.begin_frame(trace())
        s.end_frame(feedback(hit=0.5))
        decision = s.begin_frame(trace())
        assert decision.order == "temperature"

    def test_high_hit_ratio_stays_zorder(self):
        s = make()
        s.begin_frame(trace())
        s.end_frame(feedback(hit=0.95))
        decision = s.begin_frame(trace())
        assert decision.order == "zorder"

    def test_hot_batch_contains_hot_tile(self):
        s = make()
        s.begin_frame(trace())
        s.end_frame(feedback(hit=0.5, hot=(7, 7)))
        decision = s.begin_frame(trace())
        # The hot unit's first supertile (<= 16 tiles at size 4) contains
        # the hot tile.
        first_supertile = [decision.dispenser.next_batch(0)[0]
                           for _ in range(16)]
        assert (7, 7) in first_supertile

    def test_log_records_decisions(self):
        s = make()
        for _ in range(3):
            s.begin_frame(trace())
            s.end_frame(feedback(hit=0.5))
        assert len(s.log) == 3
        assert s.log[0].order == "zorder"
        assert s.log[1].order == "temperature"
        assert s.log[1].ranking_cycles > 0

    def test_ranking_hides_under_geometry(self):
        s = make()
        s.begin_frame(trace())
        s.end_frame(feedback(hit=0.5))
        s.begin_frame(trace())
        assert s.log[-1].ranking_cycles < trace().geometry_cycles

    def test_end_frame_before_begin_fails(self):
        with pytest.raises(AssertionError):
            make().end_frame(feedback())


class TestSizeClamping:
    def test_size_clamped_on_small_grids(self):
        s = make(num_rus=2)
        # Drive the resizer to 16 via repeated improvements, then check
        # the scheduled size never starves the two units on an 8x8 grid.
        cycles = 1_000_000
        for _ in range(8):
            s.begin_frame(trace(8, 8))
            s.end_frame(feedback(cycles=cycles, hit=0.5))
            cycles = int(cycles * 0.9)
        decision = s.begin_frame(trace(8, 8))
        per_axis = -(-8 // decision.supertile_size)
        assert per_axis * per_axis >= 2 * 2

    def test_large_grid_allows_large_supertiles(self):
        s = make(num_rus=2)
        assert s._clamp_size(16, trace(60, 34)) == 16

    def test_many_units_clamp_harder(self):
        s = make(num_rus=8)
        clamped = s._clamp_size(16, trace(8, 8))
        assert clamped <= 4
