"""Tests for the declarative sweep engine (repro.experiments).

Spec validation/expansion/serialization, the crash-safe artifact store,
in-process resume semantics, failure isolation, and the speedup-matrix
aggregation.  The subprocess SIGKILL test lives in test_sweep_resume.py.
"""

import json
import os
from types import SimpleNamespace

import pytest

from repro.errors import ConfigValidationError
from repro.experiments import (AXIS_ALIASES, ArtifactStore, ExperimentSpec,
                               PointOutcome, SweepPoint, SweepResult,
                               parse_axis_option, parse_axis_value,
                               resolve_axes, run_sweep, speedup_matrix)

from faults import bit_flip, truncate_file


def tiny_spec(**overrides):
    """A fast 128x64 tri_overlap grid used across these tests."""
    defaults = dict(name="tiny", benchmarks=["tri_overlap"],
                    kinds=["baseline", "libra"],
                    axes={"raster_units": [1, 2]},
                    frames=1, width=128, height=64)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    """One trace-cache directory for the module (runs share traces)."""
    path = tmp_path_factory.mktemp("sweep_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


class TestSpecValidation:
    def test_valid_spec_passes(self):
        tiny_spec().validate()

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigValidationError, match="unknown benchmark"):
            tiny_spec(benchmarks=["nope"]).validate()

    def test_bad_kind(self):
        with pytest.raises(ConfigValidationError):
            tiny_spec(kinds=["quantum"]).validate()

    def test_baseline_must_be_swept(self):
        with pytest.raises(ConfigValidationError, match="baseline kind"):
            tiny_spec(kinds=["ptr", "libra"]).validate()

    def test_empty_axis_values(self):
        with pytest.raises(ConfigValidationError, match="non-empty"):
            tiny_spec(axes={"supertile": []}).validate()

    def test_unknown_axis_path(self):
        with pytest.raises(ConfigValidationError):
            tiny_spec(axes={"scheduler.not_a_field": [1]}).validate()

    def test_alias_and_dotted_axes_accepted(self):
        tiny_spec(axes={"supertile": [2, 4],
                        "dram.requests_per_cycle": [0.32]}).validate()

    def test_policy_bounds(self):
        with pytest.raises(ConfigValidationError):
            tiny_spec(workers=0).validate()
        with pytest.raises(ConfigValidationError):
            tiny_spec(retries=-1).validate()


class TestSpecExpansion:
    def test_num_points(self):
        spec = tiny_spec(axes={"raster_units": [1, 2], "supertile": [2, 4]})
        assert spec.num_points == 8
        assert len(spec.expand()) == 8

    def test_kinds_vary_fastest(self):
        points = tiny_spec().expand()
        assert [p.kind for p in points[:2]] == ["baseline", "libra"]
        assert points[0].axes == points[1].axes

    def test_point_ids_deterministic_and_unique(self):
        a = [p.point_id for p in tiny_spec().expand()]
        b = [p.point_id for p in tiny_spec().expand()]
        assert a == b
        assert len(set(a)) == len(a)

    def test_axisless_spec_degenerates_to_compare(self):
        spec = tiny_spec(axes={})
        points = spec.expand()
        assert len(points) == 2
        assert all(p.axes == () for p in points)

    def test_resolve_axes_split(self):
        build, settings = resolve_axes(
            {"raster_units": 4, "supertile": 8, "dram.latency_cycles": 90})
        assert build == {"raster_units": 4}
        assert settings == {AXIS_ALIASES["supertile"]: 8,
                            "dram.latency_cycles": 90}


class TestSpecSerialization:
    def test_round_trip(self):
        spec = tiny_spec(axes={"supertile": [2, 4]})
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_unknown_key_rejected(self):
        data = tiny_spec().to_dict()
        data["benchmark"] = "typo"
        with pytest.raises(ConfigValidationError, match="unknown spec key"):
            ExperimentSpec.from_dict(data)

    def test_needs_name_and_benchmarks(self):
        with pytest.raises(ConfigValidationError, match="name"):
            ExperimentSpec.from_dict({"frames": 2})

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(tiny_spec().to_dict()))
        assert ExperimentSpec.from_file(path) == tiny_spec()

    def test_from_yaml_file(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(
            "name: tiny\n"
            "benchmarks: [tri_overlap]\n"
            "kinds: [baseline, libra]\n"
            "axes:\n  raster_units: [1, 2]\n"
            "frames: 1\nwidth: 128\nheight: 64\n")
        assert ExperimentSpec.from_file(path) == tiny_spec()

    def test_invalid_json_diagnosed(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(ConfigValidationError, match="invalid JSON"):
            ExperimentSpec.from_file(path)

    def test_fingerprint_ignores_execution_policy(self):
        grid = tiny_spec()
        assert grid.fingerprint() == tiny_spec(
            workers=8, timeout_s=60.0, retries=3).fingerprint()
        assert grid.fingerprint() != tiny_spec(frames=2).fingerprint()
        assert grid.fingerprint() != tiny_spec(
            axes={"raster_units": [1, 4]}).fingerprint()


class TestAxisParsing:
    def test_values_typed_eagerly(self):
        assert parse_axis_value("4") == 4
        assert parse_axis_value("0.25") == 0.25
        assert parse_axis_value("morton") == "morton"

    def test_option_parsing(self):
        assert parse_axis_option("supertile=2,4") == ("supertile", [2, 4])

    def test_bad_option(self):
        for option in ("supertile", "=2,4", "supertile="):
            with pytest.raises(ConfigValidationError):
                parse_axis_option(option)


class TestArtifactStore:
    def test_fresh_then_resume(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        assert store.initialize(tiny_spec()) is False
        assert store.initialize(tiny_spec(workers=4)) is True

    def test_different_grid_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.initialize(tiny_spec())
        with pytest.raises(ConfigValidationError, match="different"):
            store.initialize(tiny_spec(frames=2))

    def test_save_load_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.initialize(tiny_spec())
        store.save("p1", {"total_cycles": 42})
        assert store.load("p1") == {"total_cycles": 42}
        assert store.completed_ids() == ["p1"]

    def test_corrupt_artifact_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.initialize(tiny_spec())
        store.save("p1", {"total_cycles": 42})
        bit_flip(store.point_path("p1"))
        assert store.load("p1") is None
        assert not store.point_path("p1").exists()

    def test_corrupt_manifest_reinitializes(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.initialize(tiny_spec())
        truncate_file(store.manifest_path, 0.3)
        assert store.initialize(tiny_spec()) is False  # fresh manifest
        assert store.read_manifest() is not None


class TestEngine:
    def test_sweep_runs_and_orders_outcomes(self, shared_cache_dir,
                                            tmp_path):
        spec = tiny_spec()
        result = run_sweep(spec, store_root=tmp_path / "store")
        assert [o.point for o in result.outcomes] == spec.expand()
        assert len(result.completed) == 4
        assert not result.failed and not result.resumed
        # Point artifacts landed in the store, one per point.
        store = ArtifactStore(tmp_path / "store")
        assert len(store.completed_ids()) == 4

    def test_rerun_resumes_everything(self, shared_cache_dir, tmp_path):
        spec = tiny_spec()
        first = run_sweep(spec, store_root=tmp_path / "store")
        again = run_sweep(spec, store_root=tmp_path / "store")
        assert len(again.resumed) == 4
        assert ([o.summary.total_cycles for o in again.completed]
                == [o.summary.total_cycles for o in first.completed])

    def test_corrupt_point_reruns_only_that_point(self, shared_cache_dir,
                                                  tmp_path, monkeypatch):
        spec = tiny_spec()
        first = run_sweep(spec, store_root=tmp_path / "store")
        victim = first.outcomes[0].point.point_id
        store = ArtifactStore(tmp_path / "store")
        bit_flip(store.point_path(victim))

        executed = []
        import repro.experiments.engine as engine
        original = engine.execute_point

        def tracking(point):
            executed.append(point.point_id)
            return original(point)

        monkeypatch.setattr(engine, "execute_point", tracking)
        again = run_sweep(spec, store_root=tmp_path / "store")
        assert executed == [victim]
        assert len(again.resumed) == 3
        assert len(again.completed) == 4

    def test_failed_point_isolated(self, shared_cache_dir, tmp_path,
                                   monkeypatch):
        from repro.errors import SimulationError
        spec = tiny_spec()
        doomed = spec.expand()[1].point_id

        import repro.experiments.engine as engine
        original = engine.execute_point

        def sometimes(point):
            if point.point_id == doomed:
                raise SimulationError("injected")
            return original(point)

        monkeypatch.setattr(engine, "execute_point", sometimes)
        result = run_sweep(spec, store_root=tmp_path / "store", retries=0)
        assert len(result.failed) == 1
        assert result.failed[0].point.point_id == doomed
        assert result.failed[0].error_type == "SimulationError"
        assert len(result.completed) == 3
        # The failure leaves no artifact, so a clean rerun completes it.
        monkeypatch.setattr(engine, "execute_point", original)
        healed = run_sweep(spec, store_root=tmp_path / "store")
        assert not healed.failed
        assert len(healed.resumed) == 3


class TestSweepTelemetry:
    def test_merged_counts_equal_sum_of_point_artifacts(
            self, shared_cache_dir, tmp_path):
        # The acceptance check for sweep-wide aggregation: a 2x2 grid's
        # merged DRAM-access count equals the sum over the per-point
        # checkpointed artifacts (workers=2 crosses the process-pool
        # boundary the driver's hub cannot see past).
        spec = tiny_spec()
        result = run_sweep(spec, store_root=tmp_path / "store", workers=2)
        assert len(result.completed) == 4
        states = [o.summary.telemetry_state for o in result.completed]
        assert all(states)
        merged = result.merged_metrics().snapshot()
        for name in ("raster.dram_accesses", "dram.reads", "frames"):
            assert merged[name] == sum(s[name]["value"] for s in states)
        assert merged["frames"] == 4  # one frame per grid point

    def test_resumed_points_keep_their_telemetry(self, shared_cache_dir,
                                                 tmp_path):
        spec = tiny_spec()
        first = run_sweep(spec, store_root=tmp_path / "store")
        again = run_sweep(spec, store_root=tmp_path / "store")
        assert len(again.resumed) == 4
        assert (again.merged_metrics().snapshot()
                == first.merged_metrics().snapshot())

    def test_point_telemetry_can_be_disabled(self, shared_cache_dir,
                                             tmp_path):
        spec = tiny_spec()
        result = run_sweep(spec, store_root=tmp_path / "store",
                           point_telemetry=False)
        assert len(result.completed) == 4
        assert result.merged_metrics() is None
        matrix = speedup_matrix(result)
        assert matrix.telemetry is None
        assert matrix.format_telemetry() == ""

    def test_matrix_carries_merged_telemetry(self, shared_cache_dir,
                                             tmp_path):
        spec = tiny_spec()
        result = run_sweep(spec, store_root=tmp_path / "store")
        matrix = speedup_matrix(result)
        assert matrix.telemetry["frames"] == 4
        table = matrix.format_telemetry()
        assert "merged across all completed points" in table
        assert "dram.reads" in table
        assert ".le_" not in table  # histogram buckets elided

    def test_merged_metrics_tolerates_pre_g4_artifacts(self):
        # Old pickled summaries predate telemetry_state entirely; the
        # getattr guard must treat them as carrying nothing.
        spec = tiny_spec()
        result = fake_result(spec, {("baseline", 1): 100,
                                    ("libra", 1): 50,
                                    ("baseline", 2): 100,
                                    ("libra", 2): 50})
        assert result.merged_metrics() is None
        assert speedup_matrix(result).telemetry is None


def fake_result(spec, cycles_by_point):
    """A SweepResult with scripted total_cycles per (kind, axes) cell."""
    result = SweepResult(spec=spec, store_root="unused")
    for point in spec.expand():
        key = (point.kind,) + tuple(v for _, v in point.axes)
        cycles = cycles_by_point.get(key)
        if cycles is None:
            result.outcomes.append(PointOutcome(point=point,
                                                status="failed",
                                                error="boom",
                                                error_type="Err"))
        else:
            result.outcomes.append(PointOutcome(
                point=point, status="ok",
                summary=SimpleNamespace(total_cycles=cycles)))
    return result


class TestAggregation:
    def test_speedups_and_geomeans(self):
        spec = tiny_spec()
        result = fake_result(spec, {("baseline", 1): 100, ("libra", 1): 50,
                                    ("baseline", 2): 100, ("libra", 2): 200})
        matrix = speedup_matrix(result)
        assert [row.speedups["libra"] for row in matrix.rows] == [2.0, 0.5]
        assert matrix.geomeans()["libra"] == pytest.approx(1.0)
        assert matrix.geomeans()["baseline"] == pytest.approx(1.0)

    def test_marginal_collapses_other_axes(self):
        spec = tiny_spec(axes={"raster_units": [1, 2],
                               "supertile": [2, 4]})
        cycles = {}
        for ru in (1, 2):
            for st in (2, 4):
                cycles[("baseline", ru, st)] = 100
                cycles[("libra", ru, st)] = 100 // ru
        matrix = speedup_matrix(fake_result(spec, cycles))
        marginal = matrix.marginal("raster_units")
        assert marginal[1]["libra"] == pytest.approx(1.0)
        assert marginal[2]["libra"] == pytest.approx(2.0)
        with pytest.raises(ConfigValidationError, match="unknown axis"):
            matrix.marginal("nope")

    def test_failed_baseline_leaves_no_speedups(self):
        spec = tiny_spec()
        result = fake_result(spec, {("libra", 1): 50,
                                    ("baseline", 2): 100, ("libra", 2): 80})
        matrix = speedup_matrix(result)
        assert matrix.rows[0].speedups == {}
        assert matrix.rows[1].speedups["libra"] == pytest.approx(1.25)
        # Formatting degrades to em-dashes instead of crashing.
        assert "—" in matrix.format()
        assert "—" in matrix.to_markdown()

    def test_markdown_partial_cells_and_footer(self):
        spec = tiny_spec(axes={"raster_units": [1, 2, 3]})
        result = fake_result(spec, {("baseline", 1): 100,
                                    ("libra", 1): 50,
                                    ("baseline", 2): 100,
                                    ("baseline", 3): 100})
        # libra@ru=1 completed but via degraded recovery; libra@ru=2
        # stays failed; libra@ru=3 was quarantined by the breaker.
        for outcome in result.outcomes:
            if outcome.point.kind != "libra":
                continue
            ru = dict(outcome.point.axes)["raster_units"]
            if ru == 1:
                outcome.provenance = "degraded"
            elif ru == 3:
                outcome.status = "tripped"
        markdown = speedup_matrix(result).to_markdown()
        lines = markdown.splitlines()
        assert "| 2.000† |" in lines[2]  # degraded value carries †
        assert "| ✗ |" in lines[3]      # failed cell is a marked hole
        assert "| ⊘ |" in lines[4]      # breaker-tripped likewise
        assert lines[-1] == ("PARTIAL matrix: 1 degraded, 1 failed, "
                             "1 tripped  "
                             "(† degraded, ✗ failed, ⊘ breaker-tripped)")

    def test_markdown_degraded_only_footer_is_not_partial(self):
        spec = tiny_spec()
        result = fake_result(spec, {("baseline", 1): 100,
                                    ("libra", 1): 50,
                                    ("baseline", 2): 100,
                                    ("libra", 2): 80})
        result.outcomes[1].provenance = "degraded"
        matrix = speedup_matrix(result)
        assert not matrix.partial
        markdown = matrix.to_markdown()
        assert "1.250" in markdown
        assert markdown.splitlines()[-1].startswith("annotations: "
                                                    "1 degraded")
        assert "PARTIAL" not in markdown

    def test_markdown_shape(self):
        spec = tiny_spec()
        result = fake_result(spec, {("baseline", 1): 100, ("libra", 1): 50,
                                    ("baseline", 2): 100, ("libra", 2): 50})
        lines = speedup_matrix(result).to_markdown().splitlines()
        assert lines[0].startswith("| benchmark | raster_units |")
        assert lines[-1].startswith("| **geomean**")
