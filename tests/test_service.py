"""The distributed sweep service (repro.service).

Unit coverage for the wire schema, the durable job store, the progress
log and the lease queue, plus the acceptance scenarios from the service
design: an HTTP-submitted sweep executed by workers must produce a
matrix *bit-identical* to a local ``run_sweep``, a SIGKILLed worker's
point must be adopted by the next worker through lease expiry, and a
malformed spec must come back as HTTP 400 — never a stack trace.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ConfigValidationError, ServiceError
from repro.experiments import (ArtifactStore, ExperimentSpec, SpeedupMatrix,
                               run_sweep, speedup_matrix)
from repro.experiments.engine import sweep_result_from_store
from repro.service import (DEFAULT_LEASE_TTL_S, JobRecord, JobStore,
                           SweepClient, claim_point, job_id_for, run_worker)
from repro.service.fleet import (FleetReporter, job_progress, read_fleet,
                                 read_worker_status, worker_file_name)
from repro.service.jobs import TERMINAL_EVENTS
from repro.service.queue import read_lease
from repro.service.server import create_server
from repro.telemetry.fleet_trace import PID_WORKER0, fleet_chrome_trace
from repro.telemetry.progress import ProgressLog

SRC = Path(__file__).resolve().parent.parent / "src"


def tiny_spec(**overrides):
    """The fast 4-point 128x64 tri_overlap grid (shared test idiom)."""
    defaults = dict(name="tiny", benchmarks=["tri_overlap"],
                    kinds=["baseline", "libra"],
                    axes={"raster_units": [1, 2]},
                    frames=1, width=128, height=64)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    """One trace cache for the module; workers and sweeps share traces."""
    path = tmp_path_factory.mktemp("service_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture
def served(tmp_path):
    """A live in-process server on a free port over a fresh store."""
    server = create_server(tmp_path / "root", host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", JobStore(tmp_path / "root")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


# ---------------------------------------------------------------------------
# wire schema


class TestSchema:
    def test_job_id_is_content_addressed(self):
        assert job_id_for(tiny_spec()) == job_id_for(tiny_spec())
        assert job_id_for(tiny_spec()) != job_id_for(
            tiny_spec(axes={"raster_units": [1, 4]}))

    def test_job_id_ignores_execution_policy(self):
        # Same grid, different run policy: same job (resubmit resumes).
        assert job_id_for(tiny_spec()) == job_id_for(
            tiny_spec(timeout_s=99.0, retries=7))

    def test_job_id_slugs_hostile_names(self):
        jid = job_id_for(tiny_spec(name="fig 18 / dram?"))
        assert jid.startswith("fig-18-dram-")
        assert "/" not in jid and " " not in jid

    def test_record_roundtrip(self):
        record = JobRecord.create(tiny_spec(), point_telemetry=False)
        clone = JobRecord.from_dict(json.loads(
            json.dumps(record.to_dict())))
        assert clone == record
        assert clone.total_points == 4
        assert not clone.point_telemetry

    def test_from_dict_ignores_unknown_keys(self):
        data = JobRecord.create(tiny_spec()).to_dict()
        data["added_in_v1_9"] = {"x": 1}
        assert JobRecord.from_dict(data).job_id == data["job_id"]

    def test_from_dict_rejects_foreign_schema(self):
        data = JobRecord.create(tiny_spec()).to_dict()
        data["schema"] = "repro.job/v2"
        with pytest.raises(ConfigValidationError, match="schema"):
            JobRecord.from_dict(data)

    def test_from_dict_rejects_unknown_state(self):
        data = JobRecord.create(tiny_spec()).to_dict()
        data["state"] = "paused"
        with pytest.raises(ConfigValidationError, match="state"):
            JobRecord.from_dict(data)

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(ConfigValidationError, match="spec"):
            JobRecord.from_dict({"job_id": "x", "fingerprint": "y"})

    def test_generation_pinned_at_submission(self):
        from repro.harness import RESULT_GENERATION
        assert JobRecord.create(tiny_spec()).generation \
            == RESULT_GENERATION


# ---------------------------------------------------------------------------
# progress log


class TestProgressLog:
    def test_emit_read_tail(self, tmp_path):
        log = ProgressLog(tmp_path / "events.jsonl")
        log.emit("a", n=1)
        log.emit("b", n=2)
        events = log.read()
        assert [e["event"] for e in events] == ["a", "b"]
        assert events[0]["n"] == 1 and "ts" in events[0]

    def test_read_resumes_from_offset(self, tmp_path):
        log = ProgressLog(tmp_path / "events.jsonl")
        log.emit("a")
        offset = log.path.stat().st_size
        log.emit("b")
        assert [e["event"] for e in log.read(offset=offset)] == ["b"]

    def test_torn_trailing_line_is_deferred(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = ProgressLog(path)
        log.emit("whole")
        with path.open("ab") as fh:  # a writer died mid-record
            fh.write(b'{"event": "torn"')
        assert [e["event"] for e in log.read()] == ["whole"]
        with path.open("ab") as fh:  # ...or was just slow: completes
            fh.write(b', "n": 3}\n')
        assert [e["event"] for e in log.read()] == ["whole", "torn"]

    def test_tail_stops_at_terminal_event(self, tmp_path):
        log = ProgressLog(tmp_path / "events.jsonl")
        log.emit("point_done")
        log.emit("job_done")
        log.emit("after")
        seen = [e["event"] for e in
                log.tail(done_events=TERMINAL_EVENTS, timeout_s=5.0)]
        assert seen == ["point_done", "job_done"]

    def test_tail_is_exact_under_concurrent_writer(self, tmp_path):
        """Offset-resume must neither duplicate nor skip records while
        a writer keeps appending mid-read."""
        log = ProgressLog(tmp_path / "events.jsonl")
        total = 200

        def writer():
            appender = ProgressLog(log.path)
            for i in range(total):
                appender.emit("tick", n=i)
                if i % 20 == 0:  # let the tailer race a partial file
                    time.sleep(0.002)
            appender.emit("job_done")

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            seen = list(log.tail(done_events=TERMINAL_EVENTS,
                                 poll_s=0.001, timeout_s=30.0))
        finally:
            thread.join(timeout=30)
        assert [e["n"] for e in seen if e["event"] == "tick"] \
            == list(range(total))
        assert seen[-1]["event"] == "job_done"

    def test_tail_heartbeats_on_idle_stream(self, tmp_path):
        log = ProgressLog(tmp_path / "events.jsonl")
        log.emit("job_submitted")
        seen = list(log.tail(poll_s=0.01, timeout_s=0.5,
                             heartbeat_s=0.1))
        beats = [e for e in seen if e["event"] == "heartbeat"]
        assert seen[0]["event"] == "job_submitted"
        assert beats and all("ts" in b for b in beats)
        # Synthetic only: the file itself never grows a heartbeat line.
        assert all(e["event"] != "heartbeat" for e in log.read())


# ---------------------------------------------------------------------------
# job store


class TestJobStore:
    def test_submit_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.submit(tiny_spec())
        again = store.submit(tiny_spec())
        assert again.job_id == first.job_id
        assert again.submitted_at == first.submitted_at
        assert len(store.list_jobs()) == 1

    def test_requeue_clears_failures_and_stale_result(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(tiny_spec())
        sweep_store = store.sweep_store(record.job_id)
        sweep_store.record_point_failure("p1", error="boom",
                                         error_type="SimulationError")
        store.result_path(record.job_id).write_text("{}")

        def fail(rec):
            rec.state = "failed"
        store.update(record.job_id, fail)

        requeued = store.submit(tiny_spec())
        assert requeued.state == "queued" and requeued.error == ""
        assert sweep_store.load_point_failures() == {}
        assert not store.result_path(record.job_id).exists()
        events = [e["event"] for e in
                  store.events(record.job_id).read()]
        assert "job_requeued" in events

    def test_done_job_is_not_requeued(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(tiny_spec())

        def finish(rec):
            rec.state = "done"
        store.update(record.job_id, finish)
        assert store.submit(tiny_spec()).state == "done"

    def test_cancel_is_terminal_and_sticky(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(tiny_spec())
        assert store.cancel(record.job_id).state == "cancelled"
        assert store.cancel(record.job_id).state == "cancelled"
        events = [e["event"] for e in
                  store.events(record.job_id).read()]
        assert events.count("job_cancelled") == 1

    def test_counts_accounting(self, tmp_path):
        spec = tiny_spec()
        store = JobStore(tmp_path)
        record = store.submit(spec)
        counts = store.counts(record.job_id, spec)
        assert counts == {"total": 4, "completed": 0, "failed": 0,
                          "leased": 0, "pending": 4}
        points = spec.expand()
        store.sweep_store(record.job_id).record_point_failure(
            points[0].point_id, error="x")
        claim = claim_point(store, record.job_id, spec, "w1")
        counts = store.counts(record.job_id, spec)
        assert counts["failed"] == 1 and counts["leased"] == 1
        assert counts["pending"] == 2
        claim.release()

    def test_corrupt_record_is_quarantined_not_fatal(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(tiny_spec())
        store.record_path(record.job_id).write_text("{not json")
        assert store.read(record.job_id) is None
        assert store.list_jobs() == []


# ---------------------------------------------------------------------------
# lease queue


class TestLeaseQueue:
    def test_claims_follow_expansion_order(self, tmp_path):
        spec = tiny_spec()
        store = JobStore(tmp_path)
        record = store.submit(spec)
        claimed = []
        while True:
            claim = claim_point(store, record.job_id, spec, "w1")
            if claim is None:
                break
            claimed.append(claim.point.point_id)
        assert claimed == [p.point_id for p in spec.expand()]
        # Every point now leased: nothing left for a second worker.
        assert claim_point(store, record.job_id, spec, "w2") is None

    def test_release_makes_point_claimable_again(self, tmp_path):
        spec = tiny_spec()
        store = JobStore(tmp_path)
        record = store.submit(spec)
        claim = claim_point(store, record.job_id, spec, "w1")
        claim.release()
        again = claim_point(store, record.job_id, spec, "w2")
        assert again.point.point_id == claim.point.point_id
        assert again.adopted_from == ""  # released, not stale-stolen

    def test_stale_lease_is_adopted(self, tmp_path):
        spec = tiny_spec()
        store = JobStore(tmp_path)
        record = store.submit(spec)
        claim = claim_point(store, record.job_id, spec, "doomed")
        pid = claim.point.point_id
        # Nobody renews the lease: age it past the TTL.
        old = time.time() - 10.0
        os.utime(claim.lease_path, (old, old))
        adopted = claim_point(store, record.job_id, spec, "rescuer",
                              lease_ttl_s=1.0)
        assert adopted.point.point_id == pid
        assert adopted.adopted_from == "doomed"
        assert read_lease(adopted.lease_path)["owner"] == "rescuer"
        events = store.events(record.job_id).read()
        adoptions = [e for e in events if e["event"] == "lease_adopted"]
        assert adoptions and adoptions[0]["previous_owner"] == "doomed"

    def test_fresh_lease_is_respected(self, tmp_path):
        spec = tiny_spec()
        store = JobStore(tmp_path)
        record = store.submit(spec)
        first = claim_point(store, record.job_id, spec, "w1",
                            lease_ttl_s=30.0)
        second = claim_point(store, record.job_id, spec, "w2",
                             lease_ttl_s=30.0)
        assert second.point.point_id != first.point.point_id

    def test_renewer_keeps_lease_fresh(self, tmp_path):
        spec = tiny_spec()
        store = JobStore(tmp_path)
        record = store.submit(spec)
        claim = claim_point(store, record.job_id, spec, "w1")
        renewer = claim.renewer(ttl_s=0.4)  # beats every 0.1s
        try:
            time.sleep(0.6)
            age = time.time() - claim.lease_path.stat().st_mtime
            assert age < 0.4, "renewal thread failed to beat"
        finally:
            renewer.stop()
        body = read_lease(claim.lease_path)
        assert body["owner"] == "w1" and body["pid"] == os.getpid()


# ---------------------------------------------------------------------------
# store-rebuilt results


class TestStoreRebuiltResults:
    def test_matrix_dict_roundtrip_preserves_markdown(self,
                                                      shared_cache_dir,
                                                      tmp_path):
        result = run_sweep(tiny_spec(), store_root=tmp_path / "s")
        matrix = speedup_matrix(result)
        clone = SpeedupMatrix.from_dict(json.loads(
            json.dumps(matrix.to_dict())))
        assert clone.to_markdown() == matrix.to_markdown()
        assert clone.format() == matrix.format()

    def test_rebuild_matches_local_sweep(self, shared_cache_dir,
                                         tmp_path):
        spec = tiny_spec()
        local = run_sweep(spec, store_root=tmp_path / "s")
        rebuilt = sweep_result_from_store(spec, tmp_path / "s")
        assert speedup_matrix(rebuilt).to_markdown() \
            == speedup_matrix(local).to_markdown()

    def test_rebuild_rejects_foreign_store(self, shared_cache_dir,
                                           tmp_path):
        run_sweep(tiny_spec(), store_root=tmp_path / "s")
        other = tiny_spec(axes={"raster_units": [1, 4]})
        with pytest.raises(ConfigValidationError, match="fingerprint"):
            sweep_result_from_store(other, tmp_path / "s")


# ---------------------------------------------------------------------------
# HTTP service end to end


class TestServiceHTTP:
    def test_submit_worker_result_bit_identical_to_local(
            self, shared_cache_dir, served, tmp_path):
        url, store = served
        spec = tiny_spec()
        client = SweepClient(url)
        ping = client.ping()
        assert ping["schema"] == "repro.job/v1"
        assert ping["generation"] == JobRecord.create(spec).generation

        record = client.submit(spec)
        assert record.state == "queued" and record.total_points == 4
        # Resubmission lands on the same job, not a duplicate.
        assert client.submit(spec).job_id == record.job_id

        executed = run_worker(store.root, worker_id="w1", once=True,
                              lease_ttl_s=5.0)
        assert executed == 4

        final = client.wait(record.job_id, timeout_s=30.0)
        assert final.state == "done"
        served_matrix = client.result(record.job_id)
        local = speedup_matrix(
            run_sweep(spec, store_root=tmp_path / "local"))
        assert served_matrix.to_markdown() == local.to_markdown()
        # And the cached payload's markdown is the same bytes again.
        payload = client.result_payload(record.job_id)
        assert payload["markdown"] == local.to_markdown()
        assert payload["counts"]["completed"] == 4

        events = [e["event"] for e in
                  client.events(record.job_id, follow=False)]
        assert events[0] == "job_submitted"
        assert events.count("point_done") == 4
        assert events[-1] == "job_done"

    def test_malformed_spec_is_http_400_not_traceback(self, served):
        url, _ = served
        client = SweepClient(url)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(tiny_spec(benchmarks=["no_such_bench"]))
        assert excinfo.value.status == 400
        assert "Traceback" not in str(excinfo.value)
        assert not excinfo.value.transient

        import urllib.request
        req = urllib.request.Request(f"{url}/v1/jobs",
                                     data=b"{not json",
                                     method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400
        body = excinfo.value.read().decode()
        assert "Traceback" not in body
        assert "error" in json.loads(body)

    def test_unknown_job_is_404(self, served):
        url, _ = served
        with pytest.raises(ServiceError) as excinfo:
            SweepClient(url).status("no-such-job")
        assert excinfo.value.status == 404

    def test_result_before_completion_is_409(self, served):
        url, _ = served
        client = SweepClient(url)
        record = client.submit(tiny_spec())
        with pytest.raises(ServiceError) as excinfo:
            client.result(record.job_id)
        assert excinfo.value.status == 409

    def test_cancelled_job_is_skipped_by_workers(self, served):
        url, store = served
        client = SweepClient(url)
        record = client.submit(tiny_spec())
        assert client.cancel(record.job_id).state == "cancelled"
        assert run_worker(store.root, once=True) == 0
        assert client.status(record.job_id).state == "cancelled"

    def test_concurrent_clients_poll_while_worker_runs(
            self, shared_cache_dir, served):
        url, store = served
        client = SweepClient(url)
        record = client.submit(tiny_spec())
        errors, polls = [], []

        def poll():
            try:
                poller = SweepClient(url)
                for _ in range(50):
                    state = poller.status(record.job_id).state
                    polls.append(state)
                    if state in ("done", "failed", "cancelled"):
                        return
                    time.sleep(0.05)
            except Exception as exc:  # surface into the main thread
                errors.append(exc)

        threads = [threading.Thread(target=poll) for _ in range(4)]
        for thread in threads:
            thread.start()
        run_worker(store.root, once=True)
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert all(s in ("queued", "running", "done") for s in polls)
        assert client.status(record.job_id).state == "done"


# ---------------------------------------------------------------------------
# crash safety: SIGKILL a worker mid-point, another adopts the lease


WORKER_DRIVER = textwrap.dedent("""
    import sys, time
    sys.path.insert(0, {src!r})
    import repro.experiments.engine as engine
    from repro.service import run_worker

    # Stretch each point so the parent has a reliable kill window.
    original = engine.execute_point
    def slowed(point):
        time.sleep(1.0)
        return original(point)
    engine.execute_point = slowed

    run_worker({root!r}, worker_id="doomed", once=True, lease_ttl_s=5.0)
""")


class TestWorkerCrashSafety:
    def test_sigkilled_workers_point_is_adopted(self, shared_cache_dir,
                                                tmp_path):
        spec = tiny_spec()
        store = JobStore(tmp_path / "root")
        record = store.submit(spec)
        driver = WORKER_DRIVER.format(src=str(SRC),
                                      root=str(store.root))
        env = dict(os.environ, PYTHONPATH=str(SRC))
        # Its own session so SIGKILL can take out the worker *and* its
        # forked simulation child — the dead-host scenario, not a tidy
        # shutdown where an orphan child finishes the point anyway.
        proc = subprocess.Popen([sys.executable, "-c", driver], env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL,
                                start_new_session=True)
        try:
            # Wait until the doomed worker holds a lease, then SIGKILL
            # it mid-simulation: the lease must survive un-released.
            deadline = time.time() + 60
            leases = store.leases_dir(record.job_id)
            while not list(leases.glob("*.lease")):
                assert time.time() < deadline, "no lease appeared"
                assert proc.poll() is None, "worker died prematurely"
                time.sleep(0.02)
            os.killpg(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        orphaned = list(leases.glob("*.lease"))
        assert orphaned, "SIGKILL must leave the lease behind"
        orphan_id = orphaned[0].stem

        # A second worker with a short TTL adopts once the lease ages.
        time.sleep(1.2)
        executed = run_worker(store.root, worker_id="rescuer",
                              once=True, lease_ttl_s=1.0)
        assert executed == spec.num_points  # nothing was checkpointed

        final = store.read(record.job_id)
        assert final.state == "done"
        events = store.events(record.job_id).read()
        adoptions = [e for e in events if e["event"] == "lease_adopted"]
        assert adoptions, "the stolen point must be recorded as adopted"
        assert adoptions[0]["point_id"] == orphan_id
        assert adoptions[0]["previous_owner"] == "doomed"
        assert not list(leases.glob("*.lease")), "leases must drain"

        # The crash-and-adopt path still yields the bit-identical
        # matrix of an undisturbed local sweep.
        rebuilt = speedup_matrix(
            sweep_result_from_store(spec, store.sweep_store(
                record.job_id).root))
        local = speedup_matrix(
            run_sweep(spec, store_root=tmp_path / "local"))
        assert rebuilt.to_markdown() == local.to_markdown()

    def test_torn_artifact_is_quarantined_and_rerun(self, shared_cache_dir,
                                                    tmp_path):
        """A torn checkpoint must rerun, never finalize a partial job.

        ``completed_ids`` goes by file existence, so bytes that fail
        their checksum (power loss mid-write, chaos 'corrupt') would
        satisfy the counts gate.  The finalizer must verify through the
        checksum layer, quarantine the torn artifact, and let the same
        worker rerun the re-opened point in the same drain.
        """
        spec = tiny_spec()
        store = JobStore(tmp_path / "root")
        record = store.submit(spec)
        sweep_store = store.sweep_store(record.job_id)
        sweep_store.initialize(spec)
        victim = spec.expand()[0].point_id
        torn = sweep_store.point_path(victim)
        torn.write_bytes(b"these bytes fail their checksum")

        executed = run_worker(store.root, worker_id="w",
                              once=True, lease_ttl_s=5.0)
        # Three genuinely-pending points plus the rerun of the victim.
        assert executed == spec.num_points

        final = store.read(record.job_id)
        assert final.state == "done"
        assert torn.with_name(torn.name + ".corrupt").exists()
        payload = json.loads(store.result_path(record.job_id)
                             .read_bytes())
        assert payload["partial"] is False
        assert payload["counts"]["completed"] == spec.num_points
        local = speedup_matrix(
            run_sweep(spec, store_root=tmp_path / "local"))
        assert payload["markdown"] == local.to_markdown()


# ---------------------------------------------------------------------------
# telemetry flag propagation (the --no-point-telemetry fix)


class TestWorkerTelemetryFlag:
    def test_forked_worker_disables_inherited_hub(self, shared_cache_dir,
                                                  tmp_path):
        """point_telemetry=False must win over an inherited enabled hub.

        The driver's hub is enabled; ``driver_pid`` tells the runner it
        is executing in a forked child, so with telemetry off it must
        disable its inherited copy (zero-overhead service workers) —
        and the checkpointed artifact must carry no telemetry.
        """
        from repro.experiments.engine import _point_runner
        from repro.telemetry import HUB
        spec = tiny_spec()
        point = spec.expand()[0]
        store = ArtifactStore(tmp_path / "s")
        store.initialize(spec)
        HUB.enable()
        try:
            child = os.fork()
            if child == 0:  # pragma: no cover - asserts in the child
                status = 1
                try:
                    _point_runner(point.benchmark, point.point_id,
                                  frames=spec.frames,
                                  points={point.point_id: point},
                                  store_root=str(store.root),
                                  point_telemetry=False,
                                  driver_pid=os.getppid())
                    status = 0 if not HUB.enabled else 2
                finally:
                    os._exit(status)
            _, raw = os.waitpid(child, 0)
            code = os.waitstatus_to_exitcode(raw)
            assert code == 0, {1: "child crashed",
                               2: "inherited hub stayed enabled"}.get(
                                   code, f"exit {code}")
            # The parent's own hub is untouched by the child's disable.
            assert HUB.enabled
        finally:
            HUB.disable()
        summary = store.load(point.point_id)
        assert summary is not None
        assert not getattr(summary, "telemetry", None)


# ---------------------------------------------------------------------------
# fleet health reporting


class TestFleetReporter:
    def test_snapshot_roundtrips_through_checksum(self, tmp_path):
        reporter = FleetReporter(tmp_path, "w1")
        reporter.write()
        status = read_worker_status(reporter.path)
        assert status["schema"] == "repro.worker/v1"
        assert status["worker_id"] == "w1"
        assert status["state"] == "idle"
        assert status["pid"] == os.getpid()
        assert "checksum" not in status  # stripped after verification

    def test_mutators_write_through(self, tmp_path):
        reporter = FleetReporter(tmp_path, "w1")
        reporter.point_started("job-a", "p0")
        status = read_worker_status(reporter.path)
        assert status["state"] == "running"
        assert (status["job_id"], status["point_id"]) == ("job-a", "p0")
        reporter.point_finished(ok=True, attempts=3)
        reporter.point_finished(ok=False)
        status = read_worker_status(reporter.path)
        assert status["points_completed"] == 1
        assert status["points_failed"] == 1
        assert status["attempts_extra"] == 2
        assert status["points_per_s"] >= 0.0

    def test_worker_id_is_slugged_into_filename(self, tmp_path):
        assert worker_file_name("host:8/w 1") == "host-8-w-1.json"
        reporter = FleetReporter(tmp_path, "host:8/w 1")
        reporter.write()
        assert reporter.path.exists()
        assert read_worker_status(reporter.path)["worker_id"] \
            == "host:8/w 1"

    def test_corrupt_snapshot_is_quarantined(self, tmp_path):
        reporter = FleetReporter(tmp_path, "w1")
        reporter.write()
        reporter.path.write_text(
            reporter.path.read_text().replace(
                '"state": "idle"', '"state": "evil"'))
        assert read_worker_status(reporter.path) is None
        assert not reporter.path.exists()  # moved aside, not left live
        assert reporter.path.with_name(
            reporter.path.name + ".corrupt").exists()

    def test_unwritable_path_degrades_never_raises(self, tmp_path):
        blocker = tmp_path / "fleet"
        blocker.write_text("a file where the directory should be")
        reporter = FleetReporter(tmp_path, "w1")
        reporter.write()  # must swallow the OSError
        assert reporter.degraded
        reporter.point_finished(ok=True)  # still safe once degraded

    def test_beat_thread_keeps_mtime_fresh(self, tmp_path):
        reporter = FleetReporter(tmp_path, "w1", interval_s=0.05)
        reporter.start()
        try:
            old = time.time() - 60.0
            os.utime(reporter.path, (old, old))
            deadline = time.time() + 5.0
            while time.time() - reporter.path.stat().st_mtime > 1.0:
                assert time.time() < deadline, "beat thread never wrote"
                time.sleep(0.02)
        finally:
            reporter.stop()
        assert read_worker_status(reporter.path)["state"] == "exited"

    def test_read_fleet_flags_stale_and_exited(self, tmp_path):
        FleetReporter(tmp_path, "live").write()
        gone = FleetReporter(tmp_path, "gone")
        gone.write()
        old = time.time() - 120.0
        os.utime(gone.path, (old, old))
        roster = read_fleet(tmp_path, stale_after_s=30.0)
        assert roster["live"] == 1 and roster["stale"] == 1
        by_id = {w["worker_id"]: w for w in roster["workers"]}
        assert not by_id["live"]["stale"]
        assert by_id["gone"]["stale"]
        assert by_id["gone"]["age_s"] > 30.0
        # A clean shutdown is stale regardless of how fresh its file is.
        done = FleetReporter(tmp_path, "done")
        done.stop()
        assert {w["worker_id"] for w in
                read_fleet(tmp_path, stale_after_s=30.0)["workers"]
                if w["stale"]} == {"gone", "done"}

    def test_read_fleet_empty_store(self, tmp_path):
        roster = read_fleet(tmp_path)
        assert roster["workers"] == []
        assert roster["live"] == 0 and roster["stale"] == 0


# ---------------------------------------------------------------------------
# job progress / ETA


class TestJobProgress:
    def test_eta_from_completion_rate(self):
        now = 1000.0
        counts = {"total": 4, "completed": 2, "failed": 0,
                  "leased": 1, "pending": 1}
        events = [{"event": "point_done", "ts": 990.0},
                  {"event": "point_done", "ts": 995.0}]
        progress = job_progress(counts, events, now=now)
        assert progress["percent"] == 50.0
        assert progress["points_per_s"] == pytest.approx(0.2)
        assert progress["eta_s"] == pytest.approx(10.0)

    def test_no_completions_means_no_eta(self):
        counts = {"total": 4, "completed": 0, "failed": 0,
                  "leased": 0, "pending": 4}
        progress = job_progress(counts, [{"event": "job_submitted",
                                          "ts": 1.0}], now=10.0)
        assert progress["percent"] == 0.0
        assert progress["points_per_s"] == 0.0
        assert progress["eta_s"] is None

    def test_finished_job_reports_zero_eta(self):
        now = 1000.0
        counts = {"total": 2, "completed": 1, "failed": 1,
                  "leased": 0, "pending": 0}
        events = [{"event": "point_done", "ts": 400.0},
                  {"event": "point_failed", "ts": 600.0}]
        progress = job_progress(counts, events, now=now)
        assert progress["percent"] == 100.0
        assert progress["eta_s"] == 0.0
        # Idle past the window: the rate falls back to the whole run.
        assert progress["points_per_s"] > 0.0

    def test_failed_points_count_toward_progress(self):
        counts = {"total": 4, "completed": 1, "failed": 1,
                  "leased": 0, "pending": 2}
        assert job_progress(counts, [], now=10.0)["percent"] == 50.0


# ---------------------------------------------------------------------------
# live observability over HTTP: /v1/metrics, /v1/fleet, heartbeats


def _parse_exposition(text):
    """{name: value} for every sample line; also sanity-checks syntax."""
    import re
    samples = {}
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            assert re.fullmatch(r"# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
                                r"(counter|gauge|histogram)", line), line
            continue
        match = re.fullmatch(
            r'([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (\S+)', line)
        assert match, f"malformed exposition line: {line!r}"
        samples[match.group(1) + (match.group(2) or "")] = \
            float(match.group(3).replace("+Inf", "inf"))
    return samples


class TestMetricsEndpoint:
    def test_exposition_is_well_formed(self, served):
        url, _ = served
        client = SweepClient(url)
        client.ping()
        client.submit(tiny_spec())

        import urllib.request
        # A request is counted just *after* its response is written, so
        # an immediate scrape may race the submit's accounting: poll.
        deadline = time.time() + 5.0
        while True:
            with urllib.request.urlopen(f"{url}/v1/metrics",
                                        timeout=10) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4")
                text = response.read().decode("utf-8")
            samples = _parse_exposition(text)
            if ("repro_http_requests_jobs_POST_201_total" in samples
                    or time.time() >= deadline):
                break
            time.sleep(0.05)

        # Request counters saw the ping and the submit.
        assert samples["repro_http_requests_ping_GET_200_total"] >= 1
        assert samples["repro_http_requests_jobs_POST_201_total"] == 1
        # Store-derived gauges reflect the queued 4-point job.
        assert samples["repro_service_jobs_total"] == 1
        assert samples["repro_service_jobs_queued"] == 1
        assert samples["repro_service_queue_depth"] == 4
        # Event counters fold in the progress log.
        assert samples["repro_service_events_job_submitted_total"] == 1

    def test_latency_histogram_buckets_are_cumulative(self, served):
        url, _ = served
        client = SweepClient(url)
        for _ in range(3):
            client.ping()
        samples = _parse_exposition(client.metrics_text())
        prefix = "repro_http_latency_s_ping_bucket"
        buckets = [(key, value) for key, value in samples.items()
                   if key.startswith(prefix)]
        assert buckets, "ping latency histogram missing"
        values = [v for _, v in buckets]
        assert values == sorted(values), "le buckets must be cumulative"
        inf = samples[prefix + '{le="+Inf"}']
        assert inf == samples["repro_http_latency_s_ping_count"]
        assert inf >= 3

    def test_event_counters_are_monotonic_across_scrapes(self, served):
        url, _ = served
        client = SweepClient(url)
        client.submit(tiny_spec())
        client.metrics_text()  # a scrape counts itself only afterwards
        first = _parse_exposition(client.metrics_text())
        second = _parse_exposition(client.metrics_text())
        # Incremental offsets: the submitted event is counted once,
        # not re-counted per scrape.
        key = "repro_service_events_job_submitted_total"
        assert first[key] == second[key] == 1
        # Request counters only ever grow (scrape accounting is
        # asynchronous, so compare with >=, not strict growth).
        assert second.get("repro_http_requests_metrics_GET_200_total",
                          0) \
            >= first.get("repro_http_requests_metrics_GET_200_total",
                         0)


class TestFleetEndpoint:
    def test_roster_reports_live_and_stale(self, served):
        url, store = served
        FleetReporter(store.root, "fresh").write()
        gone = FleetReporter(store.root, "gone")
        gone.write()
        old = time.time() - 300.0
        os.utime(gone.path, (old, old))

        roster = SweepClient(url).fleet()
        assert roster["live"] == 1 and roster["stale"] == 1
        by_id = {w["worker_id"]: w for w in roster["workers"]}
        assert not by_id["fresh"]["stale"]
        assert by_id["gone"]["stale"]
        # A longer horizon via the query parameter revives it.
        wide = SweepClient(url).fleet(stale_after_s=600.0)
        assert wide["live"] == 2 and wide["stale_after_s"] == 600.0

    def test_empty_fleet_is_empty_roster_not_error(self, served):
        url, _ = served
        roster = SweepClient(url).fleet()
        assert roster == {"workers": [], "live": 0, "stale": 0,
                          "stale_after_s": 30.0,
                          "generated_at": roster["generated_at"]}

    def test_bad_stale_after_is_400(self, served):
        url, _ = served
        with pytest.raises(ServiceError) as excinfo:
            SweepClient(url).fleet(stale_after_s="soon")
        assert excinfo.value.status == 400


class TestEventsHeartbeat:
    def test_idle_follow_emits_heartbeat_chunks(self, served):
        url, _ = served
        client = SweepClient(url)
        record = client.submit(tiny_spec())  # queued, nobody works it
        events = list(client.events(record.job_id, follow=True,
                                    timeout_s=1.0, heartbeat_s=0.2,
                                    include_heartbeats=True))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "job_submitted"
        assert kinds.count("heartbeat") >= 2
        # The client filters them out of normal consumption.
        quiet = list(client.events(record.job_id, follow=True,
                                   timeout_s=0.6, heartbeat_s=0.2))
        assert all(e["event"] != "heartbeat" for e in quiet)

    def test_access_log_routes_through_repro_logger(self, served,
                                                    caplog):
        url, _ = served
        import logging
        with caplog.at_level(logging.DEBUG,
                             logger="repro.service.server"):
            SweepClient(url).ping()
        assert any("GET /v1/ping" in r.message for r in caplog.records)


# ---------------------------------------------------------------------------
# end to end: a two-worker sweep is fully observable


class TestFleetObservabilityE2E:
    def test_progress_fleet_and_merged_trace(self, shared_cache_dir,
                                             served, tmp_path):
        url, store = served
        client = SweepClient(url)
        record = client.submit(tiny_spec(), point_telemetry=True)
        # Split the 4 points across two sequential workers so the
        # merged timeline has two genuinely distinct worker tracks.
        assert run_worker(store.root, worker_id="w1", once=True,
                          max_points=2, lease_ttl_s=5.0) == 2
        assert run_worker(store.root, worker_id="w2", once=True,
                          lease_ttl_s=5.0) == 2
        final = client.wait(record.job_id, timeout_s=30.0)
        assert final.state == "done"

        # Progress/ETA on the status payload.
        progress = client.status(record.job_id).progress
        assert progress["percent"] == 100.0
        assert progress["eta_s"] == 0.0
        assert progress["points_per_s"] > 0.0

        # Both workers reported health; both exited, hence stale.
        roster = client.fleet()
        assert {w["worker_id"] for w in roster["workers"]} \
            == {"w1", "w2"}
        assert roster["live"] == 0 and roster["stale"] == 2
        done_counts = {w["worker_id"]: w["points_completed"]
                       for w in roster["workers"]}
        assert done_counts == {"w1": 2, "w2": 2}

        # The scrape saw the drain.
        samples = _parse_exposition(client.metrics_text())
        assert samples["repro_service_events_point_done_total"] == 4
        assert samples["repro_service_jobs_done"] == 1
        assert samples["repro_service_queue_depth"] == 0

        # Per-point streams carry the correlation fields...
        trace_files = sorted(
            store.traces_dir(record.job_id).glob("*.jsonl"))
        assert len(trace_files) == 4
        first = json.loads(trace_files[0].read_text()
                           .splitlines()[0])
        assert first["job_id"] == record.job_id
        assert first["worker_id"] in ("w1", "w2")
        assert first["point_id"]

        # ...and merge into one timeline with a pid per worker.
        doc = fleet_chrome_trace(store.job_dir(record.job_id))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 4
        assert {e["pid"] for e in spans} \
            == {PID_WORKER0, PID_WORKER0 + 1}
        assert all(e["args"]["job_id"] == record.job_id
                   and e["args"]["point_id"] for e in spans)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"job", "worker w1", "worker w2"}

        # The CLI surfaces all of it: the fleet view and the merged
        # trace artifact.
        from repro.cli import main
        assert main(["fleet", "--server", url]) == 0
        out = tmp_path / "fleet_trace.json"
        assert main(["trace", "--store", str(store.root),
                     "--out", str(out)]) == 0
        written = json.loads(out.read_text())
        assert {e["pid"] for e in written["traceEvents"]
                if e["ph"] == "X"} == {PID_WORKER0, PID_WORKER0 + 1}
