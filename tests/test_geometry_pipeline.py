"""Tests for the Geometry Pipeline (vertex shading -> screen primitives)."""

import numpy as np
import pytest

from repro.geometry import DrawCall, GeometryPipeline, quad_mesh
from repro.geometry.pipeline import vertex_lines
from repro.geometry.vecmath import orthographic, translation

CAMERA = orthographic(0.0, 128.0, 0.0, 128.0, -10.0, 10.0)


def run(draws, **kwargs):
    return GeometryPipeline(128, 128, **kwargs).run(draws, CAMERA)


class TestFunctionalOutput:
    def test_quad_produces_two_primitives(self):
        out = run([DrawCall(mesh=quad_mesh(10, 10, 20, 20))])
        assert out.stats.primitives_out == 2

    def test_screen_coordinates(self):
        out = run([DrawCall(mesh=quad_mesh(0, 0, 128, 128))])
        xs = np.concatenate([p.xy[:, 0] for p in out.primitives])
        ys = np.concatenate([p.xy[:, 1] for p in out.primitives])
        assert xs.min() == pytest.approx(0.0)
        assert xs.max() == pytest.approx(128.0)
        assert ys.min() == pytest.approx(0.0)
        assert ys.max() == pytest.approx(128.0)

    def test_y_flip_world_bottom_is_screen_bottom(self):
        # World y=0 (orthographic bottom) must land at screen y=128
        # (pixel rows grow downward).
        out = run([DrawCall(mesh=quad_mesh(0, 0, 10, 10))])
        ys = np.concatenate([p.xy[:, 1] for p in out.primitives])
        assert ys.max() == pytest.approx(128.0)

    def test_model_matrix_applied(self):
        draw = DrawCall(mesh=quad_mesh(0, 0, 10, 10),
                        model_matrix=translation(50, 0, 0))
        out = run([draw])
        xs = np.concatenate([p.xy[:, 0] for p in out.primitives])
        assert xs.min() == pytest.approx(50.0)

    def test_offscreen_quad_culled(self):
        out = run([DrawCall(mesh=quad_mesh(500, 500, 10, 10))])
        assert out.stats.primitives_out == 0
        assert out.stats.triangles_culled_frustum == 2

    def test_partially_visible_quad_clipped(self):
        out = run([DrawCall(mesh=quad_mesh(120, 120, 30, 30))])
        assert out.stats.triangles_clipped >= 1
        assert out.stats.primitives_out >= 1

    def test_sequence_numbers_monotonic(self):
        out = run([DrawCall(mesh=quad_mesh(0, 0, 50, 50)),
                   DrawCall(mesh=quad_mesh(20, 20, 50, 50))])
        sequences = [p.sequence for p in out.primitives]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_primitive_carries_draw_state(self):
        draw = DrawCall(mesh=quad_mesh(0, 0, 10, 10), texture_id=7,
                        blend="alpha", depth_write=False)
        out = run([draw])
        prim = out.primitives[0]
        assert prim.texture_id == 7
        assert prim.blend == "alpha"
        assert not prim.depth_write


class TestStatsAndTiming:
    def test_vertex_counts(self):
        out = run([DrawCall(mesh=quad_mesh(0, 0, 10, 10))])
        assert out.stats.vertices_fetched == 4
        assert out.stats.vertices_shaded == 4

    def test_vertex_instructions_counted(self):
        out = run([DrawCall(mesh=quad_mesh(0, 0, 10, 10))])
        expected = 4 * out.stats.vertex_instructions // 4
        assert out.stats.vertex_instructions == expected
        assert out.stats.vertex_instructions > 0

    def test_fetch_addresses_one_per_vertex(self):
        out = run([DrawCall(mesh=quad_mesh(0, 0, 10, 10, buffer_base=0)),
                   DrawCall(mesh=quad_mesh(0, 0, 10, 10,
                                           buffer_base=4096))])
        assert len(out.vertex_fetch_addresses) == 8
        assert len(set(out.vertex_fetch_addresses)) == 8

    def test_cycles_positive_and_scale_with_work(self):
        small = run([DrawCall(mesh=quad_mesh(0, 0, 10, 10))])
        big = run([DrawCall(mesh=quad_mesh(0, 0, 10, 10))
                   for _ in range(50)])
        assert small.cycles > 0
        assert big.cycles > small.cycles

    def test_vertex_lines_collapse_addresses(self):
        lines = vertex_lines([0, 32, 64, 100, 128])
        assert lines == [0, 0, 1, 1, 2]


class TestBackfaceOption:
    def test_disabled_by_default(self):
        out = run([DrawCall(mesh=quad_mesh(0, 0, 10, 10))])
        assert out.stats.triangles_culled_backface == 0

    def test_enabled_culls_one_winding(self):
        out = run([DrawCall(mesh=quad_mesh(0, 0, 10, 10))],
                  cull_backfaces=True)
        # The quad's two triangles share a winding: either both survive or
        # both are culled, and flipping must invert the outcome.
        survived = out.stats.primitives_out
        assert survived in (0, 2)
