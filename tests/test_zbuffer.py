"""Tests for the tile Z-buffer and Early-Z."""

import numpy as np
import pytest

from repro.raster.rasterizer import FragmentBatch
from repro.raster.zbuffer import TileZBuffer, filter_batch


def batch(coords, depths):
    xs = np.array([c[0] for c in coords], dtype=np.int64)
    ys = np.array([c[1] for c in coords], dtype=np.int64)
    d = np.array(depths, dtype=np.float64)
    return FragmentBatch(xs=xs, ys=ys, depth=d,
                         u=np.zeros(len(d)), v=np.zeros(len(d)))


class TestDepthTest:
    def test_first_fragment_passes(self):
        zb = TileZBuffer(32)
        zb.reset(0, 0)
        passed = zb.test(batch([(1, 1)], [0.5]))
        assert passed.tolist() == [True]

    def test_farther_fragment_rejected(self):
        zb = TileZBuffer(32)
        zb.reset(0, 0)
        zb.test(batch([(1, 1)], [0.5]))
        passed = zb.test(batch([(1, 1)], [0.9]))
        assert passed.tolist() == [False]

    def test_closer_fragment_passes(self):
        zb = TileZBuffer(32)
        zb.reset(0, 0)
        zb.test(batch([(1, 1)], [0.5]))
        passed = zb.test(batch([(1, 1)], [0.1]))
        assert passed.tolist() == [True]

    def test_no_depth_write_passes_without_blocking(self):
        zb = TileZBuffer(32)
        zb.reset(0, 0)
        zb.test(batch([(1, 1)], [0.5]), depth_write=False)
        # Buffer untouched: a 0.7 fragment still passes.
        passed = zb.test(batch([(1, 1)], [0.7]))
        assert passed.tolist() == [True]

    def test_equal_depth_rejected(self):
        zb = TileZBuffer(32)
        zb.reset(0, 0)
        zb.test(batch([(1, 1)], [0.5]))
        passed = zb.test(batch([(1, 1)], [0.5]))
        assert passed.tolist() == [False]

    def test_reset_rebinds_origin(self):
        zb = TileZBuffer(32)
        zb.reset(0, 0)
        zb.test(batch([(1, 1)], [0.5]))
        zb.reset(32, 32)
        passed = zb.test(batch([(33, 33)], [0.9]))
        assert passed.tolist() == [True]

    def test_out_of_tile_fragment_rejected_loudly(self):
        zb = TileZBuffer(32)
        zb.reset(0, 0)
        with pytest.raises(ValueError):
            zb.test(batch([(40, 0)], [0.5]))

    def test_duplicate_pixels_in_one_batch_keep_min(self):
        zb = TileZBuffer(32)
        zb.reset(0, 0)
        zb.test(batch([(2, 2), (2, 2)], [0.9, 0.3]))
        assert zb.depth_at(2, 2) == pytest.approx(0.3)

    def test_empty_batch(self):
        zb = TileZBuffer(32)
        zb.reset(0, 0)
        passed = zb.test(batch([], []))
        assert passed.shape == (0,)

    def test_rejects_bad_tile_size(self):
        with pytest.raises(ValueError):
            TileZBuffer(0)


class TestFilterBatch:
    def test_keeps_selected(self):
        b = batch([(0, 0), (1, 0), (2, 0)], [0.1, 0.2, 0.3])
        kept = filter_batch(b, np.array([True, False, True]))
        assert kept.count == 2
        assert kept.xs.tolist() == [0, 2]
        assert kept.depth.tolist() == [0.1, 0.3]
