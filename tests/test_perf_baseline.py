"""Tests for performance-baseline tracking (repro.perf.baseline).

The contract under test: ``record`` measures median-of-k wall-clock
plus deterministic simulated metrics per curated case into a
fingerprinted document; ``compare`` applies MAD-based noise bands and
exits 0 when clean, 1 on a regression / metric drift / missing case,
2 on usage errors.  A synthetically slowed kernel (injected fake
timer) must trip the regression path.
"""

import json
import os

import pytest

from repro.cli import main
from repro.errors import ConfigValidationError
from repro.perf import (PerfBaseline, QUICK_CASES, compare_baselines,
                        load_baseline, next_bench_path, record_baseline,
                        write_baseline)
from repro.perf.baseline import PerfCase, _mad

#: One tiny kernel case so recording takes milliseconds.
FAST_CASES = (PerfCase("kernel.tri_overlap.libra", "tri_overlap", "libra",
                       frames=1, width=128, height=64),)


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    """One trace-cache directory for the module (cases share traces)."""
    path = tmp_path_factory.mktemp("perf_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="module")
def recorded(shared_cache_dir):
    """A real baseline of the fast case, recorded once per module."""
    return record_baseline(cases=FAST_CASES, repeat=3)


def _slow_timer(step_s: float):
    """A fake clock advancing ``step_s`` per call — every timed region
    appears to take exactly ``step_s`` seconds (the synthetically
    slowed kernel of the acceptance criteria)."""
    state = {"now": 0.0}

    def timer() -> float:
        state["now"] += step_s
        return state["now"]

    return timer


class TestRecord:
    def test_document_shape_and_fingerprint(self, recorded):
        doc = recorded.to_dict()
        assert doc["schema"] == 1
        assert {"git_sha", "python", "platform",
                "cpu_count"} <= set(doc["fingerprint"])
        case = doc["cases"]["kernel.tri_overlap.libra"]
        assert len(case["wall_samples_s"]) == 3
        assert case["wall_median_s"] == pytest.approx(
            sorted(case["wall_samples_s"])[1], abs=1e-6)
        assert case["metrics"]["total_cycles"] > 0
        assert case["metrics"]["raster_dram_accesses"] > 0
        assert 0.0 <= case["metrics"]["texture_hit_ratio"] <= 1.0

    def test_simulated_metrics_are_deterministic(self, recorded):
        again = record_baseline(cases=FAST_CASES, repeat=1)
        assert (again.cases["kernel.tri_overlap.libra"].metrics
                == recorded.cases["kernel.tri_overlap.libra"].metrics)

    def test_suite_style_case_sums_over_kinds(self, shared_cache_dir):
        suite_case = next(c for c in QUICK_CASES if c.style == "suite")
        baseline = record_baseline(cases=[suite_case], repeat=1)
        metrics = baseline.cases[suite_case.case_id].metrics
        assert metrics["total_cycles"] > 0
        assert 0.0 <= metrics["texture_hit_ratio"] <= 1.0

    def test_repeat_must_be_positive(self):
        with pytest.raises(ConfigValidationError):
            record_baseline(cases=FAST_CASES, repeat=0)

    def test_mad(self):
        assert _mad([]) == 0.0
        assert _mad([5.0]) == 0.0
        assert _mad([1.0, 2.0, 9.0]) == 1.0


class TestPersistence:
    def test_write_load_round_trip(self, recorded, tmp_path):
        path = write_baseline(recorded, tmp_path / "BENCH_1.json")
        loaded = load_baseline(path)
        assert loaded.to_dict() == recorded.to_dict()

    def test_next_bench_path_numbering(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_1.json"
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        assert next_bench_path(tmp_path).name == "BENCH_8.json"

    def test_load_rejects_non_json(self, tmp_path):
        bad = tmp_path / "BENCH_1.json"
        bad.write_text("not json {")
        with pytest.raises(ConfigValidationError, match="not valid JSON"):
            load_baseline(bad)

    def test_load_rejects_wrong_document(self, tmp_path):
        bad = tmp_path / "BENCH_1.json"
        bad.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ConfigValidationError, match="no 'cases'"):
            load_baseline(bad)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigValidationError, match="cannot read"):
            load_baseline(tmp_path / "BENCH_404.json")


class TestCompare:
    def test_identical_records_are_clean(self, recorded):
        report = compare_baselines(recorded, recorded)
        assert report.exit_code == 0
        assert [v.status for v in report.verdicts] == ["ok"]
        assert "ok" in report.format()

    def test_slowed_kernel_is_a_regression(self, recorded,
                                           shared_cache_dir):
        slowed = record_baseline(cases=FAST_CASES, repeat=2,
                                 timer=_slow_timer(5.0))
        report = compare_baselines(slowed, recorded)
        assert report.exit_code == 1
        assert report.verdicts[0].status == "regression"
        assert "band" in report.verdicts[0].detail

    def test_faster_is_informational(self, recorded):
        fast = PerfBaseline.from_dict(recorded.to_dict())
        case = fast.cases["kernel.tri_overlap.libra"]
        case.wall_median_s *= 0.01
        report = compare_baselines(fast, recorded)
        assert report.exit_code == 0
        assert report.verdicts[0].status == "faster"

    def test_metric_drift_fails_regardless_of_wall_clock(self, recorded):
        drifted = PerfBaseline.from_dict(recorded.to_dict())
        drifted.cases["kernel.tri_overlap.libra"].metrics[
            "total_cycles"] += 1
        report = compare_baselines(drifted, recorded)
        assert report.exit_code == 1
        assert report.verdicts[0].status == "metrics-drift"
        assert "total_cycles" in report.verdicts[0].detail
        # ... unless the deterministic check is explicitly waived.
        waived = compare_baselines(drifted, recorded, check_metrics=False)
        assert waived.exit_code == 0

    def test_missing_case_fails(self, recorded):
        empty = PerfBaseline(fingerprint={}, repeat=1, cases={})
        report = compare_baselines(empty, recorded)
        assert report.exit_code == 1
        assert report.verdicts[0].status == "missing"

    def test_mad_band_absorbs_noise(self, recorded):
        base = PerfBaseline.from_dict(recorded.to_dict())
        case = base.cases["kernel.tri_overlap.libra"]
        case.wall_median_s = 1.0
        case.wall_mad_s = 0.1
        noisy = PerfBaseline.from_dict(base.to_dict())
        # +25% is outside a 10% threshold but inside 3 MADs (0.3s).
        noisy.cases["kernel.tri_overlap.libra"].wall_median_s = 1.25
        assert compare_baselines(noisy, base).exit_code == 0
        tight = compare_baselines(noisy, base, mad_factor=1.0)
        assert tight.exit_code == 1


class TestCli:
    def test_record_compare_round_trip_exits_0(self, shared_cache_dir,
                                               tmp_path, capsys):
        out = str(tmp_path / "BENCH_1.json")
        assert main(["perf", "record", "--quick", "--repeat", "1",
                     "--out", out]) == 0
        assert "wrote perf baseline" in capsys.readouterr().out
        # Self-comparison of the very same file: zero deltas, exit 0.
        assert main(["perf", "compare", "--baseline", out,
                     "--current", out]) == 0
        assert "perf compare" in capsys.readouterr().out

    def test_compare_detects_tampered_metrics(self, shared_cache_dir,
                                              tmp_path, capsys):
        out = tmp_path / "BENCH_1.json"
        assert main(["perf", "record", "--quick", "--repeat", "1",
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        case = next(iter(doc["cases"].values()))
        case["metrics"]["total_cycles"] += 1000
        tampered = tmp_path / "BENCH_2.json"
        tampered.write_text(json.dumps(doc))
        code = main(["perf", "compare", "--baseline", str(out),
                     "--current", str(tampered)])
        assert code == 1
        assert "metrics-drift" in capsys.readouterr().out

    def test_bad_repeat_is_usage_error(self, capsys):
        assert main(["perf", "record", "--repeat", "0"]) == 2

    def test_record_defaults_to_next_bench_path(self, shared_cache_dir,
                                                tmp_path, monkeypatch,
                                                capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["perf", "record", "--quick", "--repeat", "1"]) == 0
        assert (tmp_path / "BENCH_1.json").exists()
        assert main(["perf", "record", "--quick", "--repeat", "1"]) == 0
        assert (tmp_path / "BENCH_2.json").exists()
