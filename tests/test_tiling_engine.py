"""Tests for the TilingEngine facade."""

import numpy as np
import pytest

from repro.geometry.mesh import ShaderProfile
from repro.geometry.primitive import Primitive
from repro.tiling.engine import TilingEngine


def prim(xy, sequence=0):
    return Primitive(
        xy=np.array(xy, dtype=np.float64),
        depth=np.zeros(3), inv_w=np.ones(3),
        uv_over_w=np.zeros((3, 2)),
        texture_id=0, shader=ShaderProfile(), sequence=sequence)


class TestTilingEngine:
    def test_tile_frame_basic(self):
        engine = TilingEngine(4, 4, 32)
        frame = engine.tile_frame([prim([[0, 0], [40, 0], [0, 40]])])
        assert frame.num_tiles == 16
        assert frame.binning_stats.primitives_binned == 1
        assert (0, 0) in frame.parameter_buffer.lists

    def test_default_order_is_morton(self):
        engine = TilingEngine(2, 2, 32)
        frame = engine.tile_frame([])
        assert frame.default_order == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_scanline_order_option(self):
        engine = TilingEngine(2, 2, 32, order="scanline")
        frame = engine.tile_frame([])
        assert frame.default_order == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_primitives_for_empty_tile(self):
        engine = TilingEngine(2, 2, 32)
        frame = engine.tile_frame([])
        assert frame.primitives_for((1, 1)) == []

    def test_nonempty_tiles_in_traversal_order(self):
        engine = TilingEngine(4, 4, 32)
        prims = [prim([[0, 0], [130, 0], [0, 4]], sequence=i)
                 for i in range(2)]
        frame = engine.tile_frame(prims)
        nonempty = frame.nonempty_tiles()
        assert nonempty
        positions = {t: i for i, t in enumerate(frame.default_order)}
        indices = [positions[t] for t in nonempty]
        assert indices == sorted(indices)

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            TilingEngine(2, 2, 32, order="diagonal")

    def test_each_frame_independent(self):
        engine = TilingEngine(2, 2, 32)
        first = engine.tile_frame([prim([[0, 0], [10, 0], [0, 10]])])
        second = engine.tile_frame([])
        assert first.parameter_buffer.lists
        assert not second.parameter_buffer.lists
