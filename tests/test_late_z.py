"""Tests for the Late-Z path (shaders that modify depth)."""

import numpy as np

from repro.geometry import DrawCall, GeometryPipeline, quad_mesh
from repro.geometry.vecmath import orthographic
from repro.raster.pipeline import RasterPipeline
from repro.raster.texture import TextureSet
from repro.tiling.engine import TilingEngine

CAMERA = orthographic(0.0, 64.0, 0.0, 64.0, -10.0, 10.0)


def render(draws, shade=False):
    textures = TextureSet()
    textures.add(64, 64, seed=0)
    geometry = GeometryPipeline(64, 64).run(draws, CAMERA)
    tiled = TilingEngine(2, 2, 32).tile_frame(geometry.primitives)
    pipeline = RasterPipeline(64, 64, 32, textures, shade_colors=shade)
    results = [pipeline.process_tile(t, tiled.primitives_for(t))
               for t in tiled.default_order]
    return results, pipeline


class TestLateZ:
    def test_flag_propagates_to_primitive(self):
        draw = DrawCall(mesh=quad_mesh(0, 0, 10, 10), modifies_depth=True)
        out = GeometryPipeline(64, 64).run([draw], CAMERA)
        assert all(p.late_z for p in out.primitives)

    def test_late_z_shades_occluded_fragments(self):
        # Near opaque quad first, then an occluded far quad.  Early-Z
        # rejects the far quad before shading; Late-Z shades it anyway.
        near = DrawCall(mesh=quad_mesh(0, 0, 64, 64, z=1.0))
        far_early = DrawCall(mesh=quad_mesh(0, 0, 64, 64, z=0.0))
        far_late = DrawCall(mesh=quad_mesh(0, 0, 64, 64, z=0.0),
                            modifies_depth=True)
        early_results, _ = render([near, far_early])
        late_results, _ = render([near, far_late])
        early_shaded = sum(r.fragments_shaded for r in early_results)
        late_shaded = sum(r.fragments_shaded for r in late_results)
        assert late_shaded > early_shaded
        assert late_shaded == 2 * early_shaded  # every fragment shaded

    def test_late_z_does_not_change_image(self):
        # The visibility outcome is identical; only the cost differs.
        near = DrawCall(mesh=quad_mesh(0, 0, 64, 64, z=1.0), texture_id=0)
        far_early = DrawCall(mesh=quad_mesh(0, 0, 64, 64, z=0.0),
                             texture_id=0)
        far_late = DrawCall(mesh=quad_mesh(0, 0, 64, 64, z=0.0),
                            texture_id=0, modifies_depth=True)
        _, early_pipe = render([near, far_early], shade=True)
        _, late_pipe = render([near, far_late], shade=True)
        assert np.allclose(early_pipe.framebuffer.image(),
                           late_pipe.framebuffer.image())

    def test_late_z_increases_trace_cost(self):
        near = DrawCall(mesh=quad_mesh(0, 0, 64, 64, z=1.0))
        far = DrawCall(mesh=quad_mesh(0, 0, 64, 64, z=0.0),
                       modifies_depth=True)
        results, _ = render([near, far])
        total_instructions = sum(r.instructions for r in results)
        baseline_results, _ = render([near])
        baseline_instructions = sum(r.instructions
                                    for r in baseline_results)
        assert total_instructions == 2 * baseline_instructions
