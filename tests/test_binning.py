"""Tests for the Polygon List Builder and Parameter Buffer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import CACHE_LINE_BYTES
from repro.geometry.mesh import ShaderProfile
from repro.geometry.primitive import Primitive
from repro.tiling.binning import (ParameterBuffer, PolygonListBuilder,
                                  triangle_overlaps_rect)


def prim(xy, sequence=0):
    return Primitive(
        xy=np.array(xy, dtype=np.float64),
        depth=np.zeros(3), inv_w=np.ones(3),
        uv_over_w=np.zeros((3, 2)),
        texture_id=0, shader=ShaderProfile(), sequence=sequence)


class TestOverlapTest:
    def test_triangle_inside_rect(self):
        assert triangle_overlaps_rect(
            np.array([[1, 1], [2, 1], [1, 2]]), 0, 0, 4, 4)

    def test_rect_inside_triangle(self):
        assert triangle_overlaps_rect(
            np.array([[-10, -10], [50, -10], [-10, 50]]), 0, 0, 4, 4)

    def test_disjoint(self):
        assert not triangle_overlaps_rect(
            np.array([[10, 10], [12, 10], [10, 12]]), 0, 0, 4, 4)

    def test_thin_diagonal_misses_corner_tile(self):
        # A sliver along the anti-diagonal of a 64x64 area overlaps the two
        # corner tiles it passes through, not the opposite corners.
        xy = np.array([[0.0, 63.0], [63.0, 0.0], [63.5, 0.5]])
        assert not triangle_overlaps_rect(xy, 0, 0, 16, 16)
        assert triangle_overlaps_rect(xy, 48, 0, 64, 16)

    def test_bbox_overlap_but_no_true_overlap(self):
        xy = np.array([[0.0, 0.0], [20.0, 0.0], [0.0, 20.0]])
        # Rect sits in the triangle's bbox but beyond the hypotenuse.
        assert not triangle_overlaps_rect(xy, 15, 15, 20, 20)

    @given(seed=st.integers(0, 5_000))
    def test_exact_is_subset_of_bbox(self, seed):
        rng = np.random.default_rng(seed)
        xy = rng.uniform(0, 64, size=(3, 2))
        rx0, ry0 = rng.uniform(0, 48, size=2)
        rx1, ry1 = rx0 + 16, ry0 + 16
        if triangle_overlaps_rect(xy, rx0, ry0, rx1, ry1):
            assert xy[:, 0].max() > rx0 and xy[:, 0].min() < rx1
            assert xy[:, 1].max() > ry0 and xy[:, 1].min() < ry1


class TestBinning:
    def test_single_tile_primitive(self):
        builder = PolygonListBuilder(4, 4, 32)
        buffer, stats = builder.bin([prim([[2, 2], [10, 2], [2, 10]])])
        assert list(buffer.lists) == [(0, 0)]
        assert stats.tile_entries == 1

    def test_spanning_primitive_in_all_overlapped_tiles(self):
        builder = PolygonListBuilder(4, 4, 32)
        buffer, _ = builder.bin(
            [prim([[0, 0], [128, 0], [0, 128]])])
        # The hypotenuse cuts the grid; the fully-covered lower-left
        # triangle of tiles must all contain it.
        assert (0, 0) in buffer.lists
        assert (1, 1) in buffer.lists
        assert (3, 3) not in buffer.lists

    def test_program_order_preserved_per_tile(self):
        builder = PolygonListBuilder(2, 2, 32)
        prims = [prim([[0, 0], [60, 0], [0, 60]], sequence=i)
                 for i in range(5)]
        buffer, _ = builder.bin(prims)
        for lst in buffer.lists.values():
            sequences = [p.sequence for p in lst]
            assert sequences == sorted(sequences)

    def test_offscreen_primitive_skipped(self):
        builder = PolygonListBuilder(2, 2, 32)
        buffer, stats = builder.bin(
            [prim([[200, 200], [210, 200], [200, 210]])])
        assert stats.primitives_binned == 0
        assert not buffer.lists

    def test_conservative_mode_uses_bbox(self):
        xy = [[0.0, 0.0], [63.0, 0.0], [0.0, 63.0]]
        exact_buffer, _ = PolygonListBuilder(2, 2, 32).bin([prim(xy)])
        loose_buffer, _ = PolygonListBuilder(2, 2, 32, exact=False).bin(
            [prim(xy)])
        assert (1, 1) not in exact_buffer.lists
        assert (1, 1) in loose_buffer.lists

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            PolygonListBuilder(0, 2, 32)

    def test_stats_max_entries(self):
        builder = PolygonListBuilder(2, 2, 32)
        prims = [prim([[0, 0], [10, 0], [0, 10]], sequence=i)
                 for i in range(3)]
        _, stats = builder.bin(prims)
        assert stats.max_entries_per_tile == 3
        assert stats.nonempty_tiles == 1


class TestParameterBuffer:
    def _filled(self):
        builder = PolygonListBuilder(2, 2, 32)
        prims = [prim([[0, 0], [60, 0], [0, 60]], sequence=i)
                 for i in range(4)]
        buffer, _ = builder.bin(prims)
        return buffer

    def test_size_counts_all_entries(self):
        buffer = self._filled()
        assert buffer.size_bytes() == buffer.total_entries * buffer.entry_bytes

    def test_fetch_addresses_cover_list_bytes(self):
        buffer = self._filled()
        for tile, lst in buffer.lists.items():
            lines = buffer.fetch_addresses(tile)
            needed = len(lst) * buffer.entry_bytes
            covered = len(lines) * CACHE_LINE_BYTES
            assert covered >= needed
            assert lines == sorted(lines)

    def test_fetch_addresses_empty_tile(self):
        buffer = self._filled()
        assert buffer.fetch_addresses((9, 9)) == []

    def test_tiles_have_disjoint_interiors(self):
        buffer = self._filled()
        tiles = list(buffer.lists)
        # Interior lines (excluding boundary lines that two lists can
        # legitimately share) must not overlap between tiles.
        for i, a in enumerate(tiles):
            for b in tiles[i + 1:]:
                la, lb = buffer.fetch_addresses(a), buffer.fetch_addresses(b)
                shared = set(la[1:-1]) & set(lb[1:-1])
                assert not shared
