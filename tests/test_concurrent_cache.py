"""Concurrent cache access: two processes racing on one entry.

The advisory ``fcntl`` lock plus atomic replace must let any number of
bench runs share one cache directory: both racers succeed, neither reads
a half-written entry, and exactly one valid entry remains.
"""

import multiprocessing

import pytest

from repro import cachefile
from repro.workloads.traces import TRACE_FORMAT_VERSION, TraceCache

from faults import tiny_builder


def _race(directory, barrier, results, index):
    """One racer: wait at the barrier, then get_or_build the shared key."""
    cache = TraceCache(directory)
    barrier.wait(timeout=30)
    traces = cache.get_or_build("shared", tiny_builder(), 2)
    results[index] = len(traces)


@pytest.fixture
def fork_ctx():
    # fork (not spawn) so child processes inherit the imported package
    # without pickling builders; the suite only runs on POSIX CI anyway.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        pytest.skip("fork start method unavailable")


class TestConcurrentGetOrBuild:
    def test_two_processes_one_valid_entry(self, tmp_path, fork_ctx):
        barrier = fork_ctx.Barrier(2)
        results = fork_ctx.Manager().dict()
        workers = [
            fork_ctx.Process(target=_race,
                             args=(tmp_path, barrier, results, i))
            for i in range(2)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=120)
        assert all(w.exitcode == 0 for w in workers)
        # Both callers got the traces...
        assert dict(results) == {0: 2, 1: 2}
        # ...nothing was quarantined (no torn reads under the lock)...
        assert not list(tmp_path.glob("*.corrupt*"))
        # ...and exactly one valid cache entry remains.
        entries = list(tmp_path.glob(f"*.v{TRACE_FORMAT_VERSION}.pkl"))
        assert len(entries) == 1
        traces = cachefile.read_cache(entries[0])
        assert len(traces) == 2

    def test_lock_serializes_read_check_write(self, tmp_path, fork_ctx):
        # Warm the entry, then race a reader against a writer; the
        # reader must see either the old or the new complete entry.
        cache = TraceCache(tmp_path)
        cache.get_or_build("shared", tiny_builder(), 1)

        barrier = fork_ctx.Barrier(2)
        results = fork_ctx.Manager().dict()

        def reader(directory, barrier, results, index):
            c = TraceCache(directory)
            barrier.wait(timeout=30)
            for _ in range(20):
                got = c.get("shared")
                assert got is not None, "reader saw a torn/corrupt entry"
            results[index] = True

        def writer(directory, barrier, results, index):
            c = TraceCache(directory)
            builder = tiny_builder()
            barrier.wait(timeout=30)
            for _ in range(5):
                c.put("shared", builder.build_many(1))
            results[index] = True

        workers = [fork_ctx.Process(target=reader,
                                    args=(tmp_path, barrier, results, 0)),
                   fork_ctx.Process(target=writer,
                                    args=(tmp_path, barrier, results, 1))]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=120)
        assert all(w.exitcode == 0 for w in workers)
        assert dict(results) == {0: True, 1: True}


class TestLockPrimitive:
    def test_lock_is_exclusive_across_processes(self, tmp_path, fork_ctx):
        target = tmp_path / "entry.pkl"
        counter = tmp_path / "counter.txt"
        counter.write_text("0")

        def bump(path, counter_path, rounds):
            for _ in range(rounds):
                with cachefile.file_lock(path):
                    value = int(counter_path.read_text())
                    counter_path.write_text(str(value + 1))

        workers = [fork_ctx.Process(target=bump,
                                    args=(target, counter, 50))
                   for _ in range(3)]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=120)
        assert all(w.exitcode == 0 for w in workers)
        # Lost updates would leave the counter short of 150.
        assert int(counter.read_text()) == 150
