"""Tests for supertile grids and aggregation."""

import pytest
from hypothesis import given, strategies as st

from repro.tiling.supertile import SupertileGrid, flatten_supertiles_to_tiles

dims = st.integers(min_value=1, max_value=30)
sizes = st.sampled_from([1, 2, 4, 8, 16])


class TestMapping:
    def test_full_hd_2x2_gives_510_supertiles(self):
        # The paper's hardware sizing example: FHD = 60x34 tiles ->
        # 30x17 = 510 supertiles of 2x2.
        grid = SupertileGrid(60, 34, 2)
        assert grid.num_supertiles == 510

    def test_supertile_of_corner(self):
        grid = SupertileGrid(8, 8, 4)
        assert grid.supertile_of((0, 0)) == 0
        assert grid.supertile_of((7, 7)) == grid.num_supertiles - 1

    def test_out_of_range_tile_rejected(self):
        grid = SupertileGrid(4, 4, 2)
        with pytest.raises(ValueError):
            grid.supertile_of((4, 0))

    def test_out_of_range_id_rejected(self):
        grid = SupertileGrid(4, 4, 2)
        with pytest.raises(ValueError):
            grid.supertile_coord(99)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            SupertileGrid(4, 4, 0)

    @given(tx=dims, ty=dims, size=sizes)
    def test_tiles_of_partitions_grid(self, tx, ty, size):
        grid = SupertileGrid(tx, ty, size)
        seen = set()
        for sid in range(grid.num_supertiles):
            for tile in grid.tiles_of(sid):
                assert tile not in seen
                seen.add(tile)
                assert grid.supertile_of(tile) == sid
        assert len(seen) == tx * ty

    @given(tx=dims, ty=dims, size=sizes)
    def test_coord_roundtrip(self, tx, ty, size):
        grid = SupertileGrid(tx, ty, size)
        for sid in range(grid.num_supertiles):
            sx, sy = grid.supertile_coord(sid)
            assert sy * grid.supertiles_x + sx == sid


class TestAggregation:
    @given(tx=st.integers(2, 16), ty=st.integers(2, 16),
           size=st.sampled_from([2, 4]), seed=st.integers(0, 1000))
    def test_aggregate_preserves_total(self, tx, ty, size, seed):
        import random
        rng = random.Random(seed)
        grid = SupertileGrid(tx, ty, size)
        per_tile = {(x, y): rng.uniform(0, 10)
                    for x in range(tx) for y in range(ty)}
        totals = grid.aggregate(per_tile)
        assert sum(totals) == pytest.approx(sum(per_tile.values()))

    def test_aggregate_places_values_correctly(self):
        grid = SupertileGrid(4, 4, 2)
        totals = grid.aggregate({(0, 0): 1.0, (1, 1): 2.0, (3, 3): 5.0})
        assert totals[0] == pytest.approx(3.0)
        assert totals[-1] == pytest.approx(5.0)


class TestOrdering:
    def test_tiles_within_supertile_zorder(self):
        grid = SupertileGrid(4, 4, 2)
        assert grid.tiles_of(0) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_all_supertiles_zorder_is_permutation(self):
        grid = SupertileGrid(6, 6, 2)
        order = grid.all_supertiles_zorder()
        assert sorted(order) == list(range(grid.num_supertiles))

    def test_flatten_covers_all_tiles(self):
        grid = SupertileGrid(5, 3, 2)
        tiles = flatten_supertiles_to_tiles(grid,
                                            grid.all_supertiles_zorder())
        assert len(tiles) == 15
        assert len(set(tiles)) == 15

    def test_ragged_edge_supertile_is_smaller(self):
        grid = SupertileGrid(5, 5, 4)
        # Right-edge supertile only covers the leftover column.
        edge = grid.tiles_of(1)
        assert all(tx == 4 for tx, _ in edge)
        assert len(edge) == 4
