"""Tests for the Fragment Stage helpers (shading, footprints, mips)."""

import numpy as np
import pytest

from repro.geometry.mesh import ShaderProfile
from repro.geometry.primitive import Primitive
from repro.raster.fragment import (FragmentProcessor, batch_uv_bounds,
                                   pick_mip_level, touched_lines)
from repro.raster.rasterizer import FragmentBatch, rasterize_in_region
from repro.raster.texture import TextureSet


def batch(us, vs):
    n = len(us)
    return FragmentBatch(
        xs=np.arange(n), ys=np.zeros(n, dtype=np.int64),
        depth=np.zeros(n), u=np.asarray(us, dtype=np.float64),
        v=np.asarray(vs, dtype=np.float64))


def textures():
    ts = TextureSet()
    ts.add(64, 64, seed=0)
    ts.add(64, 64, seed=1)
    return ts


def full_tile_prim(texture_id=0, fetches=1, insts=8):
    return Primitive(
        xy=np.array([[0.0, 0.0], [64.0, 0.0], [0.0, 64.0]]),
        depth=np.zeros(3), inv_w=np.ones(3),
        uv_over_w=np.array([[0, 0], [1, 0], [0, 1]], dtype=np.float64),
        texture_id=texture_id,
        shader=ShaderProfile(fragment_instructions=insts,
                             texture_fetches=fetches))


class TestMipSelection:
    def test_empty_batch_level_zero(self):
        ts = textures()
        assert pick_mip_level(ts[0], batch([], [])) == 0

    def test_dense_sampling_higher_level(self):
        ts = textures()
        # 4 fragments spanning the whole texture: massively minified.
        wide = batch([0.0, 1.0, 0.0, 1.0], [0.0, 0.0, 1.0, 1.0])
        assert pick_mip_level(ts[0], wide) > 0

    def test_native_sampling_level_zero(self):
        ts = textures()
        # 64 fragments across 1/64th of a 64-texel texture: ~1 texel each.
        us = np.linspace(0, 1 / 64, 64)
        assert pick_mip_level(ts[0], batch(us, us)) == 0


class TestTouchedLines:
    def test_unique_and_in_first_touch_order(self):
        ts = textures()
        b = batch([0.9, 0.05, 0.9, 0.05], [0.05, 0.05, 0.05, 0.05])
        lines = touched_lines(ts[0], b, 0)
        assert len(lines) == 2
        assert len(set(lines)) == 2
        # 0.9 was touched first, so its block's line comes first.
        assert lines[0] > lines[1]

    def test_wrapped_coordinates(self):
        ts = textures()
        a = touched_lines(ts[0], batch([0.25], [0.25]), 0)
        b = touched_lines(ts[0], batch([1.25], [-0.75]), 0)
        assert a == b

    def test_empty_batch(self):
        ts = textures()
        assert touched_lines(ts[0], batch([], []), 0) == []

    def test_level_changes_addresses(self):
        ts = textures()
        b = batch([0.5], [0.5])
        assert touched_lines(ts[0], b, 0) != touched_lines(ts[0], b, 1)


class TestFragmentProcessor:
    def test_charge_accumulates(self):
        proc = FragmentProcessor(textures())
        prim = full_tile_prim(fetches=2, insts=10)
        proc.charge(prim, 100)
        proc.charge(prim, 50)
        assert proc.fragments_shaded == 150
        assert proc.instructions == 1500
        assert proc.texture_fetches == 300

    def test_shade_returns_unit_colors(self):
        proc = FragmentProcessor(textures())
        prim = full_tile_prim()
        frags = rasterize_in_region(prim, 0, 0, 32, 32)
        colors = proc.shade(prim, frags)
        assert colors.shape == (frags.count, 4)
        assert colors.min() >= 0.0 and colors.max() <= 1.0

    def test_shade_unknown_texture_flat_color(self):
        proc = FragmentProcessor(textures())
        prim = full_tile_prim(texture_id=99)
        frags = rasterize_in_region(prim, 0, 0, 8, 8)
        colors = proc.shade(prim, frags)
        # Flat: every fragment gets the same color.
        assert np.allclose(colors, colors[0])

    def test_alpha_blend_reduces_alpha(self):
        proc = FragmentProcessor(textures())
        prim = full_tile_prim()
        prim.blend = "alpha"
        frags = rasterize_in_region(prim, 0, 0, 8, 8)
        colors = proc.shade(prim, frags)
        assert colors[:, 3].max() <= 0.8 + 1e-9

    def test_shade_empty_batch(self):
        proc = FragmentProcessor(textures())
        empty = rasterize_in_region(full_tile_prim(), 200, 200, 8, 8)
        colors = proc.shade(full_tile_prim(), empty)
        assert colors.shape == (0, 4)


class TestBatchUVBounds:
    def test_bounds(self):
        b = batch([0.1, 0.5, 0.3], [0.2, 0.9, 0.4])
        assert batch_uv_bounds(b) == (0.1, 0.2, 0.5, 0.9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            batch_uv_bounds(batch([], []))
