"""Tests for the Blending Unit."""

import numpy as np
import pytest

from repro.raster.blending import BLEND_MODES, blend

RED = np.array([1.0, 0.0, 0.0, 1.0])
BLUE = np.array([0.0, 0.0, 1.0, 1.0])


class TestOpaque:
    def test_replaces_destination(self):
        assert np.allclose(blend(BLUE, RED, "opaque"), RED)

    def test_does_not_alias_source(self):
        out = blend(BLUE, RED, "opaque")
        out[0] = 0.5
        assert RED[0] == 1.0


class TestAlpha:
    def test_full_alpha_is_replace(self):
        assert np.allclose(blend(BLUE, RED, "alpha")[:3], RED[:3])

    def test_zero_alpha_keeps_destination(self):
        transparent = np.array([1.0, 0.0, 0.0, 0.0])
        assert np.allclose(blend(BLUE, transparent, "alpha")[:3], BLUE[:3])

    def test_half_alpha_mixes(self):
        half_red = np.array([1.0, 0.0, 0.0, 0.5])
        out = blend(BLUE, half_red, "alpha")
        assert out[0] == pytest.approx(0.5)
        assert out[2] == pytest.approx(0.5)

    def test_alpha_accumulates(self):
        half = np.array([0.0, 0.0, 0.0, 0.5])
        dst = np.array([0.0, 0.0, 0.0, 0.5])
        out = blend(dst, half, "alpha")
        assert out[3] == pytest.approx(0.75)

    def test_batched_shapes(self):
        dst = np.tile(BLUE, (10, 1))
        src = np.tile(np.array([1.0, 0, 0, 0.5]), (10, 1))
        out = blend(dst, src, "alpha")
        assert out.shape == (10, 4)


class TestAdditive:
    def test_adds(self):
        out = blend(RED, BLUE, "additive")
        assert np.allclose(out, [1, 0, 1, 1])

    def test_saturates_at_one(self):
        out = blend(RED, RED, "additive")
        assert out.max() == 1.0


class TestErrors:
    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            blend(RED, BLUE, "multiply")

    def test_modes_list(self):
        assert set(BLEND_MODES) == {"opaque", "alpha", "additive"}
