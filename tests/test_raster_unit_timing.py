"""Tests for the timing Raster Unit (interval execution)."""

import pytest

from repro.config import small_config
from repro.gpu.raster_unit import TimingRasterUnit
from repro.gpu.workload import TileWorkload
from repro.memory.hierarchy import SharedMemory, make_tile_cache


def make_unit(config=None, ideal=False):
    cfg = config or small_config()
    shared = SharedMemory(cfg)
    unit = TimingRasterUnit(0, cfg, shared, make_tile_cache(cfg),
                            ideal_memory=ideal)
    unit.begin_frame()
    return unit, shared, cfg


def one_shot_source(workloads):
    queue = list(workloads)

    def fetch(ru_index):
        return queue.pop(0) if queue else None
    return fetch


def simple_tile(tile=(0, 0), instructions=4000, lines=None, fb=None,
                pb=None):
    lines = lines or []
    return TileWorkload(
        tile=tile, instructions=instructions, fragments=instructions // 8,
        texture_lines=list(lines), texture_fetches=len(lines),
        pb_lines=list(pb or []), fb_lines=list(fb or []),
        num_primitives=1,
        prim_fragments=[max(instructions // 8, 1)],
        prim_instructions=[instructions])


class TestExecution:
    def test_tile_completes_within_budget(self):
        unit, shared, cfg = make_unit()
        fetch = one_shot_source([simple_tile(instructions=1000)])
        worked = unit.step(10_000, fetch)
        assert worked
        assert unit.stats.tiles_completed == 1
        assert not unit.busy

    def test_large_tile_spans_intervals(self):
        unit, shared, cfg = make_unit()
        fetch = one_shot_source([simple_tile(instructions=100_000)])
        unit.step(1000, fetch)
        assert unit.busy
        for _ in range(100):
            shared.end_interval()
            if not unit.step(1000, fetch):
                break
        assert unit.stats.tiles_completed == 1

    def test_idle_without_work(self):
        unit, _, _ = make_unit()
        assert not unit.step(1000, one_shot_source([]))

    def test_empty_tile_flushes_framebuffer(self):
        unit, shared, _ = make_unit()
        fb_lines = list(range(64))
        fetch = one_shot_source([TileWorkload(tile=(0, 0),
                                              fb_lines=fb_lines)])
        unit.step(1000, fetch)
        assert unit.stats.tiles_completed == 1
        assert shared.dram.stats.writes == 64

    def test_multiple_tiles_in_one_interval(self):
        unit, _, _ = make_unit()
        tiles = [simple_tile(tile=(i, 0), instructions=100)
                 for i in range(5)]
        unit.step(10_000, one_shot_source(tiles))
        assert unit.stats.tiles_completed == 5

    def test_per_tile_stats_recorded(self):
        unit, _, _ = make_unit()
        unit.step(100_000, one_shot_source(
            [simple_tile(tile=(2, 3), instructions=800,
                         lines=[10, 20, 30])]))
        assert (2, 3) in unit.stats.per_tile_dram
        assert unit.stats.per_tile_instructions[(2, 3)] == 800


class TestMemoryPath:
    def test_texture_accesses_counted(self):
        unit, _, _ = make_unit()
        unit.step(100_000, one_shot_source(
            [simple_tile(lines=[1, 2, 3, 1, 2])]))
        assert unit.stats.texture_accesses == 5
        assert unit.l1.stats.hits == 2

    def test_dram_misses_attributed_to_tile(self):
        unit, _, _ = make_unit()
        unit.step(100_000, one_shot_source(
            [simple_tile(tile=(0, 0), lines=[1, 2, 3])]))
        assert unit.stats.per_tile_dram[(0, 0)] == 3

    def test_pb_reads_through_tile_cache(self):
        unit, shared, _ = make_unit()
        unit.step(100_000, one_shot_source(
            [simple_tile(pb=[100, 101])]))
        assert unit.tile_cache.stats.accesses == 2
        assert shared.traffic.counts["parameter"] == 2

    def test_ideal_memory_never_touches_hierarchy(self):
        unit, shared, _ = make_unit(ideal=True)
        unit.step(100_000, one_shot_source(
            [simple_tile(lines=[1, 2, 3], pb=[5], fb=[9])]))
        assert shared.dram.stats.accesses == 0
        assert unit.stats.tiles_completed == 1

    def test_congestion_stalls_progress(self):
        cfg = small_config()
        cfg.dram.requests_per_cycle = 0.01  # starve the memory system
        unit, shared, _ = make_unit(cfg)
        lines = list(range(0, 100_000, 64))  # all distinct, all miss
        tile = simple_tile(instructions=10_000, lines=lines)
        fetch = one_shot_source([tile])
        intervals = 0
        while unit.step(1000, fetch) and intervals < 10_000:
            shared.end_interval()
            intervals += 1
        assert unit.stats.memory_stall_intervals > 0

    def test_latency_recorded(self):
        unit, _, _ = make_unit()
        unit.step(100_000, one_shot_source([simple_tile(lines=[1, 1])]))
        stats = unit.stats
        assert stats.mean_texture_latency > 0
        # Second access hits L1: mean must be below the DRAM latency.
        assert stats.mean_texture_latency < 100
