"""Tests for textures: layout, addressing, footprints, sampling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import CACHE_LINE_BYTES
from repro.raster.texture import (BLOCK, TEXELS_PER_LINE, Texture,
                                  TextureSet, select_mip)


def tex(w=64, h=64, base=0, seed=0):
    return Texture(0, w, h, base, seed=seed)


class TestGeometry:
    def test_block_constants(self):
        assert BLOCK * BLOCK == TEXELS_PER_LINE
        assert TEXELS_PER_LINE * 4 == CACHE_LINE_BYTES

    def test_levels_count(self):
        assert tex(64, 64).levels == 5  # 64,32,16,8,4
        assert tex(256, 256).levels == 7

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Texture(0, 48, 64, 0)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            Texture(0, 2, 2, 0)

    def test_rejects_unaligned_base(self):
        with pytest.raises(ValueError):
            Texture(0, 64, 64, 7)

    def test_size_includes_mip_chain(self):
        t = tex(64, 64)
        base = 64 * 64 * 4  # level 0 bytes
        assert t.size_bytes() > base
        assert t.size_bytes() < base * 1.5  # mip chain adds ~1/3


class TestAddressing:
    def test_line_addresses_unique_across_levels(self):
        t = tex(64, 64, base=0)
        seen = set()
        for level in range(t.levels):
            for by in range(t.blocks_y(level)):
                for bx in range(t.blocks_x(level)):
                    addr = t.line_address(level, bx, by)
                    assert addr not in seen
                    seen.add(addr)
        assert len(seen) == t.size_bytes() // CACHE_LINE_BYTES

    def test_base_offset_applied(self):
        a = tex(64, 64, base=0)
        b = tex(64, 64, base=1 << 20)
        delta = b.line_address(0, 0, 0) - a.line_address(0, 0, 0)
        assert delta == (1 << 20) // CACHE_LINE_BYTES

    def test_block_wraps(self):
        t = tex(64, 64)
        assert t.line_address(0, 16, 0) == t.line_address(0, 0, 0)


class TestFootprint:
    def test_full_level_when_span_exceeds_one(self):
        t = tex(64, 64)
        lines = t.footprint_lines(0.0, 0.0, 1.5, 0.1, level=0)
        assert len(lines) == t.blocks_x(0) * len(
            t._wrapped_block_range(0.0, 0.1, t.blocks_y(0)))

    def test_small_window_few_lines(self):
        t = tex(64, 64)
        lines = t.footprint_lines(0.0, 0.0, 0.0624, 0.0624, level=0)
        assert len(lines) == 1  # 4x4 texels = one block

    def test_wrapping_window_splits(self):
        t = tex(64, 64)
        lines = t.footprint_lines(0.95, 0.0, 1.05, 0.05, level=0)
        # Crosses the u=1 seam: blocks at both edges.
        blocks_x = sorted((line % t.blocks_x(0)) for line in lines)
        assert 0 in blocks_x and t.blocks_x(0) - 1 in blocks_x

    def test_footprint_all_within_texture(self):
        t = tex(64, 64, base=1 << 16)
        lines = t.footprint_lines(0.2, 0.3, 0.7, 0.9, level=1)
        first = t.level_base_line(1)
        last = t.level_base_line(1) + t.blocks_x(1) * t.blocks_y(1)
        assert all(first <= line < last for line in lines)

    @given(u0=st.floats(0, 1), v0=st.floats(0, 1),
           du=st.floats(0, 0.5), dv=st.floats(0, 0.5),
           level=st.integers(0, 4))
    def test_footprint_unique_lines(self, u0, v0, du, dv, level):
        t = tex(64, 64)
        lines = t.footprint_lines(u0, v0, u0 + du, v0 + dv, level)
        assert len(lines) == len(set(lines))
        assert lines  # never empty: at least one block


class TestMipSelection:
    def test_one_to_one_density_is_level_zero(self):
        t = tex(256, 256)
        # 0.25 UV span over 64x64 pixels -> 64 texels per 64 px.
        assert select_mip(t, 0.25 * 0.25, 64 * 64) == 0

    def test_minified_selects_higher_level(self):
        t = tex(256, 256)
        level = select_mip(t, 1.0, 32 * 32)  # 256 texels per 32 px
        assert level == 3  # ratio 64 -> level 3

    def test_density_below_four_stays_level_zero(self):
        t = tex(256, 256)
        # ratio just below 4 -> floor(0.5*log2(r)) == 0
        assert select_mip(t, 3.9 * 32 * 32 / 256 ** 2, 32 * 32) == 0

    def test_zero_pixels_selects_last_level(self):
        t = tex(64, 64)
        assert select_mip(t, 1.0, 0.0) == t.levels - 1

    def test_level_clamped(self):
        t = tex(64, 64)
        assert select_mip(t, 1e9, 1.0) == t.levels - 1


class TestSampling:
    def test_data_deterministic(self):
        a = tex(64, 64, seed=5).data(0)
        b = tex(64, 64, seed=5).data(0)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = tex(64, 64, seed=5).data(0)
        b = tex(64, 64, seed=6).data(0)
        assert not np.array_equal(a, b)

    def test_sample_in_unit_range(self):
        t = tex(64, 64)
        rgba = t.sample(0.3, 0.7)
        assert rgba.shape == (4,)
        assert (0.0 <= rgba).all() and (rgba <= 1.0).all()

    def test_sample_wraps(self):
        t = tex(64, 64)
        assert np.allclose(t.sample(0.25, 0.25), t.sample(1.25, -0.75))

    def test_bilinear_between_texels(self):
        t = tex(64, 64, seed=1)
        rgba = t.sample_bilinear(0.5, 0.5)
        assert (0.0 <= rgba).all() and (rgba <= 1.0).all()

    def test_checker_style(self):
        t = Texture(0, 64, 64, 0, style="checker")
        data = t.data(0)
        assert not np.array_equal(data[0, 0, :3], data[0, BLOCK, :3])

    def test_unknown_style_rejected(self):
        t = Texture(0, 64, 64, 0, style="plasma")
        with pytest.raises(ValueError):
            t.data(0)


class TestTextureSet:
    def test_non_overlapping_allocations(self):
        ts = TextureSet()
        a = ts.add(64, 64)
        b = ts.add(128, 128)
        end_of_a = a.base_address + a.size_bytes()
        assert b.base_address >= end_of_a

    def test_duplicate_id_rejected(self):
        ts = TextureSet()
        ts.add(64, 64, texture_id=3)
        with pytest.raises(ValueError):
            ts.add(64, 64, texture_id=3)

    def test_lookup_and_contains(self):
        ts = TextureSet()
        t = ts.add(64, 64)
        assert t.texture_id in ts
        assert ts[t.texture_id] is t
        assert 99 not in ts

    def test_total_bytes(self):
        ts = TextureSet()
        a = ts.add(64, 64)
        b = ts.add(64, 64)
        assert ts.total_bytes() == a.size_bytes() + b.size_bytes()
