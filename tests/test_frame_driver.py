"""Tests for the frame driver (geometry + raster + stats + feedback)."""

import pytest

from repro.config import RasterUnitConfig, small_config
from repro.core.scheduler import (FrameFeedback, ScheduleDecision,
                                  TileScheduler, QueueDispenser,
                                  ZOrderScheduler, zorder_tile_batches)
from repro.gpu.frame import FrameDriver
from repro.gpu.workload import FrameTrace, TileWorkload


def make_trace(frame_index=0):
    workloads = {}
    for y in range(4):
        for x in range(4):
            heat = 50 if (x, y) == (3, 3) else 3
            base = (y * 4 + x) * 10_000
            workloads[(x, y)] = TileWorkload(
                tile=(x, y), instructions=4000, fragments=500,
                texture_lines=[base + i for i in range(heat)],
                texture_fetches=heat * 2,
                fb_lines=[1_000_000 + (y * 4 + x) * 64 + i
                          for i in range(8)],
                num_primitives=2,
                prim_fragments=[250, 250],
                prim_instructions=[2000, 2000])
    return FrameTrace(frame_index=frame_index, tiles_x=4, tiles_y=4,
                      tile_size=32, workloads=workloads,
                      geometry_cycles=2000,
                      vertex_lines=list(range(2_000_000, 2_000_040)),
                      vertex_instructions=640)


class RecordingScheduler(TileScheduler):
    """Z-order scheduler that records the feedback it receives."""

    def __init__(self):
        self.feedback = []

    def begin_frame(self, trace):
        return ScheduleDecision(
            dispenser=QueueDispenser(zorder_tile_batches(trace)),
            order="zorder", supertile_size=1)

    def end_frame(self, feedback):
        self.feedback.append(feedback)


def make_driver(scheduler=None, num_rus=2, **kwargs):
    cfg = small_config(num_raster_units=num_rus,
                       raster_unit=RasterUnitConfig(num_cores=4))
    return FrameDriver(cfg, scheduler or ZOrderScheduler(), **kwargs)


class TestFrameResult:
    def test_basic_fields(self):
        result = make_driver().run_frame(make_trace())
        assert result.frame_index == 0
        assert result.geometry_cycles == 2000
        assert result.raster_cycles > 0
        assert result.total_cycles == (result.geometry_cycles
                                       + result.raster_cycles)
        assert result.tiles_completed == 16

    def test_hit_ratio_in_unit_range(self):
        result = make_driver().run_frame(make_trace())
        assert 0.0 <= result.texture_hit_ratio <= 1.0

    def test_dram_accesses_exclude_geometry(self):
        result = make_driver().run_frame(make_trace())
        assert result.raster_dram_accesses > 0
        # FB writes alone are 16 tiles x 8 lines.
        assert result.raster_dram_accesses >= 128

    def test_per_tile_maps_complete(self):
        result = make_driver().run_frame(make_trace())
        assert set(result.per_tile_dram) == {(x, y) for x in range(4)
                                             for y in range(4)}

    def test_energy_populated(self):
        result = make_driver().run_frame(make_trace())
        assert result.energy.total_j > 0
        counts = result.energy_counts
        assert counts.core_instructions == 16 * 4000 + 640
        assert counts.cycles == result.total_cycles

    def test_interval_series_recorded(self):
        result = make_driver().run_frame(make_trace())
        assert result.dram_interval_requests
        assert sum(result.dram_interval_requests) > 0

    def test_frame_indices_increment(self):
        driver = make_driver()
        first = driver.run_frame(make_trace(0))
        second = driver.run_frame(make_trace(1))
        assert (first.frame_index, second.frame_index) == (0, 1)


class TestSchedulerFeedback:
    def test_feedback_delivered_each_frame(self):
        scheduler = RecordingScheduler()
        driver = make_driver(scheduler)
        driver.run_frame(make_trace())
        driver.run_frame(make_trace(1))
        assert len(scheduler.feedback) == 2
        fb = scheduler.feedback[0]
        assert isinstance(fb, FrameFeedback)
        assert fb.raster_cycles > 0
        assert fb.per_tile_dram

    def test_hot_tile_visible_in_feedback(self):
        scheduler = RecordingScheduler()
        make_driver(scheduler).run_frame(make_trace())
        per_tile = scheduler.feedback[0].per_tile_dram
        assert per_tile[(3, 3)] > per_tile[(0, 0)]


class TestIdealMemoryMode:
    def test_ideal_is_not_slower(self):
        real = make_driver().run_frame(make_trace())
        ideal = make_driver(ideal_memory=True).run_frame(make_trace())
        assert ideal.raster_cycles <= real.raster_cycles
        assert ideal.raster_dram_accesses == 0

    def test_scheduler_configured_with_unit_count(self):
        scheduler = ZOrderScheduler()
        make_driver(scheduler, num_rus=2)
        assert scheduler.num_raster_units == 2
