"""Balance properties of the dispensers under heterogeneous loads.

The dispensers only decide *order*; balance emerges from units polling at
their own pace. These tests emulate units with different speeds and check
no unit starves and the hot/cold split behaves as Section V-D describes.
"""

from repro.core.scheduler import (AffinityQueueDispenser, HotColdDispenser,
                                  QueueDispenser)


def simulate_polling(dispenser, speeds, num_units=2):
    """Emulate units polling proportionally to their speeds.

    ``speeds`` maps unit index -> how many tiles it consumes per round.
    Returns the list of tiles each unit received.
    """
    received = {u: [] for u in range(num_units)}
    progress = True
    while progress:
        progress = False
        for unit in range(num_units):
            for _ in range(speeds.get(unit, 1)):
                batch = dispenser.next_batch(unit)
                if batch is None:
                    continue
                received[unit].extend(batch)
                progress = True
    return received


class TestHotColdBalance:
    def ranked(self, n=12, size=4):
        # n supertiles of `size` tiles, hottest first: tile ids encode rank.
        return [[(rank, i) for i in range(size)] for rank in range(n)]

    def test_equal_speeds_split_work_evenly(self):
        d = HotColdDispenser(self.ranked())
        received = simulate_polling(d, {0: 1, 1: 1})
        assert abs(len(received[0]) - len(received[1])) <= 1

    def test_slow_hot_unit_offloads_to_cold(self):
        # Unit 0 (hot) polls 1 tile/round; unit 1 polls 3 -> unit 1 does
        # roughly 3x the tiles. Nobody idles while work remains.
        d = HotColdDispenser(self.ranked())
        received = simulate_polling(d, {0: 1, 1: 3})
        assert len(received[1]) > 2 * len(received[0])
        assert len(received[0]) + len(received[1]) == 48

    def test_hot_unit_sees_hotter_ranks_on_average(self):
        d = HotColdDispenser(self.ranked())
        received = simulate_polling(d, {0: 1, 1: 1})
        mean_rank = lambda tiles: sum(r for r, _ in tiles) / len(tiles)
        assert mean_rank(received[0]) < mean_rank(received[1])

    def test_hottest_supertile_goes_entirely_to_unit_zero(self):
        d = HotColdDispenser(self.ranked())
        received = simulate_polling(d, {0: 1, 1: 1})
        hottest = [t for t in received[1] if t[0] == 0]
        assert not hottest  # unit 1 never touched rank-0 tiles


class TestAffinityBalance:
    def test_faster_unit_takes_more_supertiles(self):
        batches = [[(b, i) for i in range(4)] for b in range(10)]
        d = AffinityQueueDispenser(batches)
        received = simulate_polling(d, {0: 1, 1: 4})
        assert len(received[1]) > len(received[0])
        assert len(received[0]) + len(received[1]) == 40

    def test_supertiles_not_interleaved_between_units(self):
        batches = [[(b, i) for i in range(4)] for b in range(10)]
        d = AffinityQueueDispenser(batches)
        received = simulate_polling(d, {0: 1, 1: 1})
        # Count supertiles whose tiles were split across units (only the
        # final stolen ones may split).
        split = 0
        for b in range(10):
            owners = {0 if (b, i) in set(received[0]) else 1
                      for i in range(4)}
            if len(owners) > 1:
                split += 1
        assert split <= 2


class TestQueueOrdering:
    def test_shared_queue_preserves_global_order(self):
        batches = [[i] for i in range(20)]
        d = QueueDispenser(batches)
        seen = []
        unit = 0
        while True:
            batch = d.next_batch(unit)
            if batch is None:
                break
            seen.extend(batch)
            unit = 1 - unit
        assert seen == list(range(20))
