"""Integration tests for extension features and ablation machinery."""

import pytest

from repro import GPUSimulator, TraceBuilder, libra_config
from repro.core.alternatives import (OracleTemperatureScheduler,
                                     RandomScheduler, TraversalScheduler)
from repro.gpu.pfr import PFRSimulator
from repro.workloads.params import HotspotSpec, WorkloadParams
from repro.workloads.scene import SceneBuilder

WIDTH, HEIGHT = 256, 128


@pytest.fixture(scope="module")
def traces():
    params = WorkloadParams(
        name="MIX", title="Mixed", style="2D", seed=3,
        memory_intensive=True, roaming_sprites=10,
        hotspots=(HotspotSpec(center=(0.35, 0.5), sprites=8, layers=4,
                              sprite_size=0.2, uv_scale=1.6, cells=16),),
        hud_elements=4, fragment_instructions=10, texture_fetches=2,
        num_textures=8, texture_size=256, detail_texture_size=256,
        scroll_speed=6.0)
    scenes = SceneBuilder(params, WIDTH, HEIGHT)
    return TraceBuilder(scenes, WIDTH, HEIGHT, 32).build_many(4)


def run_with(traces, scheduler):
    config = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
    return GPUSimulator(config, scheduler=scheduler).run(traces)


class TestAlternativeSchedulersEndToEnd:
    def test_all_policies_complete_all_tiles(self, traces):
        expected = traces[0].num_tiles * len(traces)
        for scheduler in (TraversalScheduler("hilbert"),
                          RandomScheduler(size=2),
                          OracleTemperatureScheduler(2)):
            result = run_with(traces, scheduler)
            done = sum(f.tiles_completed for f in result.frames)
            assert done == expected, type(scheduler).__name__

    def test_policies_agree_on_work_not_time(self, traces):
        a = run_with(traces, TraversalScheduler("scanline"))
        b = run_with(traces, RandomScheduler(size=2))
        # Same instructions retired...
        assert (a.total_energy_counts().core_instructions
                == b.total_energy_counts().core_instructions)
        # ...but scheduling changes the time.
        assert a.total_cycles != b.total_cycles


class TestFBCompressionEndToEnd:
    def test_compression_reduces_dram_and_never_slows(self, traces):
        plain_cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
        squeezed_cfg = libra_config(screen_width=WIDTH,
                                    screen_height=HEIGHT)
        squeezed_cfg.fb_compression_ratio = 0.5
        plain = GPUSimulator(plain_cfg).run(traces)
        squeezed = GPUSimulator(squeezed_cfg).run(traces)
        assert squeezed.raster_dram_accesses < plain.raster_dram_accesses
        assert squeezed.total_cycles <= plain.total_cycles * 1.01


class TestPFREndToEnd:
    def test_pfr_runs_on_real_traces(self, traces):
        config = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
        result = PFRSimulator(config).run(traces)
        assert result.frames == len(traces)
        assert result.total_cycles > 0


class TestHarnessThresholdVariants:
    def test_threshold_override_changes_key_not_crash(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro import harness
        default = harness.run_simulation("GDL", "libra", frames=2)
        tweaked = harness.run_simulation("GDL", "libra", frames=2,
                                         hit_threshold=0.0)
        # hit_threshold=0 forces Z-order forever; results may differ but
        # both must be complete runs of the same work.
        assert default.frames == tweaked.frames == 2
        assert all(o == "zorder" for o in tweaked.frame_orders)
