"""Tests for the multi-RU interval timing simulator."""

import pytest

from repro.config import RasterUnitConfig, small_config
from repro.core.scheduler import QueueDispenser
from repro.gpu.frame import FrameDriver
from repro.gpu.timing import TimingSimulator
from repro.gpu.workload import FrameTrace, TileWorkload
from repro.core.scheduler import ZOrderScheduler


def make_trace(tiles_x=4, tiles_y=4, instructions=2000, lines_per_tile=4):
    workloads = {}
    for y in range(tiles_y):
        for x in range(tiles_x):
            base = (y * tiles_x + x) * 1000
            workloads[(x, y)] = TileWorkload(
                tile=(x, y), instructions=instructions,
                fragments=instructions // 8,
                texture_lines=[base + i for i in range(lines_per_tile)],
                texture_fetches=lines_per_tile,
                num_primitives=1,
                prim_fragments=[instructions // 8],
                prim_instructions=[instructions])
    return FrameTrace(frame_index=0, tiles_x=tiles_x, tiles_y=tiles_y,
                      tile_size=32, workloads=workloads,
                      geometry_cycles=100)


def make_sim(num_rus=2):
    cfg = small_config(num_raster_units=num_rus,
                       raster_unit=RasterUnitConfig(num_cores=4))
    driver = FrameDriver(cfg, ZOrderScheduler())
    return driver.timing, driver


class TestRasterPhase:
    def test_all_tiles_complete(self):
        timing, _ = make_sim()
        trace = make_trace()
        batches = [[t] for t in trace.all_tiles()]
        result = timing.run_raster_phase(trace, QueueDispenser(batches))
        assert result.tiles_completed == 16

    def test_cycles_positive_and_interval_aligned(self):
        timing, driver = make_sim()
        trace = make_trace()
        result = timing.run_raster_phase(
            trace, QueueDispenser([[t] for t in trace.all_tiles()]))
        assert result.cycles > 0
        assert result.intervals >= 1

    def test_work_splits_across_units(self):
        timing, _ = make_sim(num_rus=2)
        trace = make_trace()
        result = timing.run_raster_phase(
            trace, QueueDispenser([[t] for t in trace.all_tiles()]))
        per_unit = [s.tiles_completed for s in result.ru_stats]
        assert sum(per_unit) == 16
        assert min(per_unit) > 0

    def test_two_units_faster_than_one(self):
        trace = make_trace(instructions=20_000)
        single, _ = make_sim(num_rus=1)
        dual, _ = make_sim(num_rus=2)
        r1 = single.run_raster_phase(
            trace, QueueDispenser([[t] for t in trace.all_tiles()]))
        r2 = dual.run_raster_phase(
            trace, QueueDispenser([[t] for t in trace.all_tiles()]))
        assert r2.cycles < r1.cycles

    def test_merged_per_tile_maps(self):
        timing, _ = make_sim()
        trace = make_trace()
        result = timing.run_raster_phase(
            trace, QueueDispenser([[t] for t in trace.all_tiles()]))
        assert set(result.merged_per_tile_dram()) == set(trace.all_tiles())
        insts = result.merged_per_tile_instructions()
        assert all(v == 2000 for v in insts.values())

    def test_empty_dispenser_finishes_immediately(self):
        timing, _ = make_sim()
        trace = make_trace()
        result = timing.run_raster_phase(trace, QueueDispenser([]))
        assert result.tiles_completed == 0
        assert result.intervals == 0

    def test_batch_dispensing(self):
        timing, _ = make_sim()
        trace = make_trace()
        tiles = trace.all_tiles()
        batches = [tiles[:8], tiles[8:]]
        result = timing.run_raster_phase(trace, QueueDispenser(batches))
        assert result.tiles_completed == 16
        # Each unit took exactly one batch of 8.
        assert sorted(s.tiles_completed for s in result.ru_stats) == [8, 8]

    def test_texture_stats_merged(self):
        timing, _ = make_sim()
        trace = make_trace(lines_per_tile=6)
        result = timing.run_raster_phase(
            trace, QueueDispenser([[t] for t in trace.all_tiles()]))
        assert result.texture_accesses == 16 * 6
        assert result.mean_texture_latency > 0
