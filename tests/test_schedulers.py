"""Tests for dispensers and the non-adaptive schedulers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.scheduler import (FrameFeedback, HotColdDispenser,
                                  QueueDispenser, StaticSupertileScheduler,
                                  TemperatureScheduler, ZOrderScheduler,
                                  supertile_batches_zorder,
                                  zorder_tile_batches)
from repro.gpu.workload import FrameTrace, TileWorkload


def trace(tiles_x=4, tiles_y=4):
    return FrameTrace(frame_index=0, tiles_x=tiles_x, tiles_y=tiles_y,
                      tile_size=32, workloads={})


def drain(dispenser, ru_pattern):
    """Pop batches following a repeating RU-index pattern."""
    out = []
    i = 0
    while True:
        batch = dispenser.next_batch(ru_pattern[i % len(ru_pattern)])
        if batch is None:
            return out
        out.append(batch)
        i += 1


class TestQueueDispenser:
    def test_hands_out_in_order(self):
        d = QueueDispenser([[1], [2], [3]])
        assert d.next_batch(0) == [1]
        assert d.next_batch(1) == [2]
        assert d.remaining() == 1

    def test_exhaustion(self):
        d = QueueDispenser([[1]])
        d.next_batch(0)
        assert d.next_batch(0) is None
        assert d.remaining() == 0

    @given(n=st.integers(0, 50))
    def test_each_batch_exactly_once(self, n):
        batches = [[i] for i in range(n)]
        d = QueueDispenser(batches)
        popped = drain(d, [0, 1])
        assert popped == batches


class TestHotColdDispenser:
    def test_unit_zero_gets_hot_end(self):
        d = HotColdDispenser([["hot"], ["warm"], ["cold"]])
        assert d.next_batch(0) == ["hot"]
        assert d.next_batch(1) == ["cold"]
        assert d.next_batch(1) == ["warm"]
        assert d.next_batch(0) is None

    def test_supertiles_dispensed_tile_by_tile(self):
        d = HotColdDispenser([["h1", "h2", "h3"], ["c1", "c2"]])
        assert d.next_batch(0) == ["h1"]
        assert d.next_batch(0) == ["h2"]
        assert d.next_batch(1) == ["c1"]
        assert d.next_batch(1) == ["c2"]

    def test_idle_unit_steals_from_other_end(self):
        d = HotColdDispenser([["h1", "h2", "h3", "h4"]])
        assert d.next_batch(0) == ["h1"]
        # The cold unit has nothing of its own left: it steals the
        # coldest pending tile of the hot queue.
        assert d.next_batch(1) == ["h4"]
        assert d.next_batch(0) == ["h2"]
        assert d.next_batch(1) == ["h3"]
        assert d.next_batch(0) is None
        assert d.next_batch(1) is None

    def test_extra_cold_units_share_cold_end(self):
        d = HotColdDispenser([[i] for i in range(4)])
        assert d.next_batch(2) == [3]
        assert d.next_batch(1) == [2]

    @given(n=st.integers(0, 40), pattern=st.lists(
        st.integers(0, 2), min_size=1, max_size=5))
    def test_every_tile_dispensed_once(self, n, pattern):
        d = HotColdDispenser([[i] for i in range(n)])
        popped = drain(d, pattern)
        assert sorted(b[0] for b in popped) == list(range(n))

    @given(n=st.integers(1, 12), pattern=st.lists(
        st.integers(0, 1), min_size=2, max_size=6))
    def test_multi_tile_batches_dispensed_once(self, n, pattern):
        batches = [[(i, j) for j in range(3)] for i in range(n)]
        d = HotColdDispenser(batches)
        popped = [t for b in drain(d, pattern) for t in b]
        assert sorted(popped) == sorted(t for b in batches for t in b)


class TestBatchBuilders:
    @given(tx=st.integers(1, 12), ty=st.integers(1, 12))
    def test_zorder_batches_cover_grid(self, tx, ty):
        batches = zorder_tile_batches(trace(tx, ty))
        tiles = [t for b in batches for t in b]
        assert len(tiles) == tx * ty
        assert len(set(tiles)) == tx * ty

    @given(tx=st.integers(1, 12), ty=st.integers(1, 12),
           size=st.sampled_from([2, 4, 8]))
    def test_supertile_batches_cover_grid(self, tx, ty, size):
        batches = supertile_batches_zorder(trace(tx, ty), size)
        tiles = [t for b in batches for t in b]
        assert len(set(tiles)) == tx * ty

    def test_supertile_batches_are_blocks(self):
        batches = supertile_batches_zorder(trace(8, 8), 4)
        assert all(len(b) == 16 for b in batches)


class TestZOrderScheduler:
    def test_decision_shape(self):
        decision = ZOrderScheduler().begin_frame(trace())
        assert decision.order == "zorder"
        assert decision.supertile_size == 1
        assert decision.dispenser.remaining() == 16

    def test_configure_validates(self):
        scheduler = ZOrderScheduler()
        with pytest.raises(ValueError):
            scheduler.configure(0)
        scheduler.configure(2)
        assert scheduler.num_raster_units == 2


class TestStaticSupertileScheduler:
    def test_batches_by_size(self):
        decision = StaticSupertileScheduler(2).begin_frame(trace())
        assert decision.supertile_size == 2
        # Affinity dispensing: remaining() counts tiles, one per pop.
        assert decision.dispenser.remaining() == 16
        first = decision.dispenser.next_batch(0)
        assert len(first) == 1

    def test_affinity_keeps_supertile_on_one_unit(self):
        decision = StaticSupertileScheduler(2).begin_frame(trace())
        unit0 = [decision.dispenser.next_batch(0)[0] for _ in range(4)]
        # The first four tiles of unit 0 form one 2x2 supertile.
        xs = {t[0] for t in unit0}
        ys = {t[1] for t in unit0}
        assert len(xs) == 2 and len(ys) == 2

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            StaticSupertileScheduler(0)


class TestTemperatureScheduler:
    def _feedback(self, hot_tile, cold_tile):
        return FrameFeedback(
            frame_index=0, raster_cycles=1000, texture_hit_ratio=0.5,
            per_tile_dram={hot_tile: 100, cold_tile: 1},
            per_tile_instructions={hot_tile: 100, cold_tile: 100})

    def test_first_frame_falls_back_to_zorder(self):
        decision = TemperatureScheduler(2).begin_frame(trace())
        assert decision.order == "zorder"

    def test_second_frame_ranks_hot_first(self):
        scheduler = TemperatureScheduler(2)
        scheduler.begin_frame(trace())
        scheduler.end_frame(self._feedback(hot_tile=(3, 3),
                                           cold_tile=(0, 0)))
        decision = scheduler.begin_frame(trace())
        assert decision.order == "temperature"
        # The hot unit's first supertile (2x2 = up to 4 tiles) contains
        # the hot tile.
        first_supertile = [decision.dispenser.next_batch(0)[0]
                           for _ in range(4)]
        assert (3, 3) in first_supertile

    def test_cold_unit_gets_cold_batch(self):
        scheduler = TemperatureScheduler(2)
        scheduler.begin_frame(trace())
        scheduler.end_frame(self._feedback(hot_tile=(3, 3),
                                           cold_tile=(0, 0)))
        decision = scheduler.begin_frame(trace())
        cold_batch = decision.dispenser.next_batch(1)
        assert (3, 3) not in cold_batch

    def test_rejects_sub_base_size(self):
        with pytest.raises(ValueError):
            TemperatureScheduler(1)
