"""Tests for repro.geometry.vecmath."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import vecmath as vm

finite = st.floats(min_value=-100.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


class TestVectors:
    def test_vec3_dtype_and_values(self):
        v = vm.vec3(1, 2, 3)
        assert v.dtype == np.float64
        assert list(v) == [1.0, 2.0, 3.0]

    def test_vec4_defaults_w_one(self):
        assert vm.vec4(0, 0, 0)[3] == 1.0

    def test_normalize_unit_length(self):
        v = vm.normalize(vm.vec3(3, 4, 0))
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_normalize_zero_vector_unchanged(self):
        v = vm.normalize(vm.vec3(0, 0, 0))
        assert np.allclose(v, 0.0)


class TestMatrices:
    def test_identity_is_noop(self):
        p = vm.vec4(1, 2, 3)
        assert np.allclose(vm.identity() @ p, p)

    def test_translation_moves_point(self):
        p = vm.translation(5, -3, 2) @ vm.vec4(1, 1, 1)
        assert np.allclose(p[:3], [6, -2, 3])

    def test_translation_preserves_w(self):
        assert (vm.translation(1, 2, 3) @ vm.vec4(0, 0, 0))[3] == 1.0

    def test_scaling(self):
        p = vm.scaling(2, 3, 4) @ vm.vec4(1, 1, 1)
        assert np.allclose(p[:3], [2, 3, 4])

    def test_rotation_z_quarter_turn(self):
        p = vm.rotation_z(math.pi / 2) @ vm.vec4(1, 0, 0)
        assert np.allclose(p[:3], [0, 1, 0], atol=1e-12)

    def test_rotation_x_quarter_turn(self):
        p = vm.rotation_x(math.pi / 2) @ vm.vec4(0, 1, 0)
        assert np.allclose(p[:3], [0, 0, 1], atol=1e-12)

    def test_rotation_y_quarter_turn(self):
        p = vm.rotation_y(math.pi / 2) @ vm.vec4(0, 0, 1)
        assert np.allclose(p[:3], [1, 0, 0], atol=1e-12)

    @given(angle=finite)
    def test_rotations_preserve_length(self, angle):
        p = vm.vec4(1, 2, 3)
        q = vm.rotation_z(angle) @ p
        assert np.linalg.norm(q[:3]) == pytest.approx(
            np.linalg.norm(p[:3]), rel=1e-9)


class TestLookAt:
    def test_eye_maps_to_origin(self):
        m = vm.look_at((1, 2, 3), (0, 0, 0))
        p = m @ vm.vec4(1, 2, 3)
        assert np.allclose(p[:3], 0.0, atol=1e-12)

    def test_target_on_negative_z(self):
        m = vm.look_at((0, 0, 5), (0, 0, 0))
        p = m @ vm.vec4(0, 0, 0)
        assert p[2] == pytest.approx(-5.0)


class TestProjections:
    def test_perspective_rejects_bad_planes(self):
        with pytest.raises(ValueError):
            vm.perspective(1.0, 1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            vm.perspective(1.0, 1.0, 5.0, 1.0)

    def test_perspective_near_plane_maps_to_minus_one(self):
        m = vm.perspective(math.pi / 2, 1.0, 1.0, 100.0)
        clip = m @ vm.vec4(0, 0, -1.0)
        assert clip[2] / clip[3] == pytest.approx(-1.0)

    def test_perspective_far_plane_maps_to_plus_one(self):
        m = vm.perspective(math.pi / 2, 1.0, 1.0, 100.0)
        clip = m @ vm.vec4(0, 0, -100.0)
        assert clip[2] / clip[3] == pytest.approx(1.0)

    def test_orthographic_maps_corners(self):
        m = vm.orthographic(0, 100, 0, 50)
        low = m @ vm.vec4(0, 0, 0)
        high = m @ vm.vec4(100, 50, 0)
        assert np.allclose(low[:2], [-1, -1])
        assert np.allclose(high[:2], [1, 1])

    def test_orthographic_rejects_degenerate(self):
        with pytest.raises(ValueError):
            vm.orthographic(0, 0, 0, 1)


class TestViewport:
    def test_ndc_origin_is_screen_center(self):
        xy = vm.viewport_transform(np.array([[0.0, 0.0]]), 200, 100)
        assert np.allclose(xy, [[100.0, 50.0]])

    def test_y_axis_is_flipped(self):
        top = vm.viewport_transform(np.array([[0.0, 1.0]]), 200, 100)
        assert top[0, 1] == pytest.approx(0.0)

    @given(x=st.floats(-1, 1), y=st.floats(-1, 1))
    def test_output_within_screen(self, x, y):
        xy = vm.viewport_transform(np.array([[x, y]]), 64, 64)
        assert 0.0 <= xy[0, 0] <= 64.0
        assert 0.0 <= xy[0, 1] <= 64.0


class TestEdgeFunction:
    def test_left_of_edge_positive(self):
        assert vm.edge_function(0, 0, 1, 0, 0.5, 1.0) > 0

    def test_right_of_edge_negative(self):
        assert vm.edge_function(0, 0, 1, 0, 0.5, -1.0) < 0

    def test_on_edge_zero(self):
        assert vm.edge_function(0, 0, 2, 0, 1.0, 0.0) == 0.0

    def test_triangle_area(self):
        assert vm.triangle_area_2d((0, 0), (4, 0), (0, 3)) == pytest.approx(6.0)

    @given(ax=finite, ay=finite, bx=finite, by=finite,
           cx=finite, cy=finite)
    def test_area_is_winding_invariant(self, ax, ay, bx, by, cx, cy):
        a = vm.triangle_area_2d((ax, ay), (bx, by), (cx, cy))
        b = vm.triangle_area_2d((cx, cy), (bx, by), (ax, ay))
        assert a == pytest.approx(b, rel=1e-9, abs=1e-9)
