"""Tests for the frame-buffer compression extension."""

import numpy as np
import pytest

from repro.config import RasterUnitConfig, small_config
from repro.core.scheduler import ZOrderScheduler
from repro.gpu.frame import FrameDriver
from repro.gpu.workload import FrameTrace, TileWorkload
from repro.memory.compression import BLOCK, FrameBufferCompressor


class TestCompressor:
    def test_fallback_ratio_applied(self):
        c = FrameBufferCompressor(fallback_ratio=0.5)
        out = c.compress_flush(list(range(64)))
        assert len(out) == 32
        assert out == list(range(32))

    def test_empty_flush(self):
        c = FrameBufferCompressor()
        assert c.compress_flush([]) == []

    def test_at_least_one_line(self):
        c = FrameBufferCompressor(fallback_ratio=0.26, minimum_ratio=0.01)
        assert len(c.compress_flush([1, 2])) == 1

    def test_stats_accumulate(self):
        c = FrameBufferCompressor(fallback_ratio=0.5)
        c.compress_flush(list(range(10)))
        c.compress_flush(list(range(10)))
        assert c.stats.tiles_compressed == 2
        assert c.stats.lines_before == 20
        assert c.stats.ratio == pytest.approx(0.5, abs=0.05)

    def test_rejects_bad_ratios(self):
        with pytest.raises(ValueError):
            FrameBufferCompressor(fallback_ratio=0.0)
        with pytest.raises(ValueError):
            FrameBufferCompressor(fallback_ratio=0.5, minimum_ratio=0.9)

    def test_uniform_tile_compresses_hard(self):
        c = FrameBufferCompressor()
        flat = np.zeros((32, 32, 4))
        noisy = np.random.default_rng(0).uniform(size=(32, 32, 4))
        # Flat tiles hit the header floor; noisy ones barely compress.
        assert c.estimate_ratio(flat) == pytest.approx(c.minimum_ratio)
        assert c.estimate_ratio(noisy) > 0.5
        assert c.estimate_ratio(flat) < c.estimate_ratio(noisy)

    def test_estimate_rejects_bad_shape(self):
        c = FrameBufferCompressor()
        with pytest.raises(ValueError):
            c.estimate_ratio(np.zeros((32, 32)))

    def test_tiny_tile_falls_back(self):
        c = FrameBufferCompressor()
        assert c.estimate_ratio(np.zeros((2, 2, 4))) == c.fallback_ratio

    def test_block_constant(self):
        assert BLOCK == 4


class TestTimingIntegration:
    def _trace(self):
        workloads = {
            (x, y): TileWorkload(
                tile=(x, y), instructions=1000, fragments=100,
                fb_lines=list(range((y * 2 + x) * 100,
                                    (y * 2 + x) * 100 + 64)),
                num_primitives=1, prim_fragments=[100],
                prim_instructions=[1000])
            for x in range(2) for y in range(2)}
        return FrameTrace(frame_index=0, tiles_x=2, tiles_y=2,
                          tile_size=32, workloads=workloads,
                          geometry_cycles=100)

    def test_compression_reduces_fb_writes(self):
        plain_cfg = small_config(
            num_raster_units=2, raster_unit=RasterUnitConfig(num_cores=4))
        compressed_cfg = small_config(
            num_raster_units=2, raster_unit=RasterUnitConfig(num_cores=4),
            fb_compression_ratio=0.5)
        plain = FrameDriver(plain_cfg, ZOrderScheduler()).run_frame(
            self._trace())
        squeezed = FrameDriver(compressed_cfg,
                               ZOrderScheduler()).run_frame(self._trace())
        assert squeezed.raster_dram_accesses < plain.raster_dram_accesses

    def test_config_validates_ratio(self):
        with pytest.raises(ValueError):
            small_config(fb_compression_ratio=1.5)
