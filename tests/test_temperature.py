"""Tests for the temperature statistics buffer (Section III-E hardware)."""

import pytest

from repro.core.temperature import (ACCESS_MAX, BASE_SUPERTILE,
                                    INSTRUCTION_MAX, MAX_ENTRIES, RATIO_MAX,
                                    RATIO_SCALE, TemperatureTable,
                                    fixed_point_ratio, saturate)


class TestSaturation:
    def test_below_max_unchanged(self):
        assert saturate(100, ACCESS_MAX) == 100

    def test_clamps_at_max(self):
        assert saturate(ACCESS_MAX + 5, ACCESS_MAX) == ACCESS_MAX

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            saturate(-1, ACCESS_MAX)


class TestFixedPointRatio:
    def test_unit_ratio(self):
        assert fixed_point_ratio(100, 100) == RATIO_SCALE

    def test_fractional_ratio(self):
        assert fixed_point_ratio(1, 4) == RATIO_SCALE // 4

    def test_zero_accesses(self):
        assert fixed_point_ratio(0, 100) == 0

    def test_no_instructions_is_maximally_hot(self):
        assert fixed_point_ratio(50, 0) == RATIO_MAX

    def test_idle_entry_is_cold(self):
        assert fixed_point_ratio(0, 0) == 0

    def test_ratio_saturates(self):
        assert fixed_point_ratio(10 ** 9, 1) == RATIO_MAX


class TestTableSizing:
    def test_full_hd_fits_exactly(self):
        # 60x34 tiles -> 510 base entries <= 512 (9-bit IDs); the paper's
        # example.
        table = TemperatureTable(60, 34)
        assert table.num_entries == 510

    def test_storage_is_64_bits_per_entry(self):
        table = TemperatureTable(60, 34)
        assert table.storage_bits() == 510 * 64
        assert table.storage_bits() / 8 / 1024 == pytest.approx(3.98, abs=0.1)

    def test_oversized_frame_rejected(self):
        with pytest.raises(ValueError):
            TemperatureTable(100, 100)

    def test_max_entries_is_nine_bit(self):
        assert MAX_ENTRIES == 512


class TestUpdateAndAggregate:
    def test_update_accumulates_per_base_supertile(self):
        table = TemperatureTable(4, 4)
        table.update({(0, 0): 10, (1, 1): 20, (3, 3): 5},
                     {(0, 0): 100, (1, 1): 100, (3, 3): 100})
        assert table.entries[0].accesses == 30
        assert table.entries[0].instructions == 200
        assert table.entries[3].accesses == 5

    def test_counters_saturate(self):
        table = TemperatureTable(4, 4)
        table.update({(0, 0): ACCESS_MAX * 2},
                     {(0, 0): INSTRUCTION_MAX * 2})
        assert table.entries[0].accesses == ACCESS_MAX
        assert table.entries[0].instructions == INSTRUCTION_MAX

    def test_update_overwrites_previous_frame(self):
        table = TemperatureTable(4, 4)
        table.update({(0, 0): 10}, {(0, 0): 10})
        table.update({(0, 0): 2}, {(0, 0): 10})
        assert table.entries[0].accesses == 2

    def test_has_data_flag(self):
        table = TemperatureTable(4, 4)
        assert not table.has_data
        table.update({}, {})
        assert table.has_data

    def test_aggregate_identity_at_base_size(self):
        table = TemperatureTable(4, 4)
        table.update({(0, 0): 8}, {(0, 0): 8})
        grid, temps = table.aggregate(BASE_SUPERTILE)
        assert grid.num_supertiles == 4
        assert temps[0] == pytest.approx(1.0)
        assert temps[1] == 0.0

    def test_aggregate_coarser_sums_entries(self):
        table = TemperatureTable(8, 8)
        table.update({(0, 0): 4, (3, 3): 4},
                     {(0, 0): 8, (3, 3): 8})
        grid, temps = table.aggregate(4)
        # Both tiles fall in the same 4x4 supertile: 8 accesses / 16 insts.
        assert temps[0] == pytest.approx(0.5)

    def test_aggregate_rejects_bad_size(self):
        table = TemperatureTable(8, 8)
        with pytest.raises(ValueError):
            table.aggregate(3)

    def test_entry_temperature_decode(self):
        table = TemperatureTable(4, 4)
        table.update({(0, 0): 3}, {(0, 0): 12})
        assert table.entries[0].temperature == pytest.approx(0.25, abs=1e-3)
