"""Tests for the process-parallel suite executor (``run_suite(workers=N)``).

The parallel backend must be a drop-in for the sequential sweep: same
outcome order, same per-pair timeout/retry policy, same failure
isolation — one worker's failing benchmark never disturbs the others —
and the same ``skipped`` reporting for unknown names.
"""

from __future__ import annotations

import time

import pytest

from repro import harness
from repro.cli import main
from repro.errors import (BenchmarkTimeoutError, CacheCorruptionError,
                          ConfigValidationError, SimulationError)

from faults import ScriptedRunner

KNOWN = ["CCS", "GDL", "SuS", "AAt"]


def _outcome_key(outcome):
    return (outcome.benchmark, outcome.kind, outcome.status,
            outcome.error_type, outcome.attempts,
            None if outcome.summary is None
            else outcome.summary.total_cycles)


def _sleep_runner(benchmark, kind, frames=1, **kw):
    """Module-level sleeper (picklable) for the worker-timeout test."""
    time.sleep(30.0)
    raise AssertionError("timeout should have fired in the worker")


class TestParallelMatchesSequential:
    def test_same_outcomes_with_injected_fault(self):
        """The acceptance scenario: one benchmark fails terminally; the
        parallel report is outcome-for-outcome equal to sequential."""
        script = {"GDL": [SimulationError] * 5}
        sequential = harness.run_suite(
            KNOWN, frames=1, runner=ScriptedRunner(script),
            known_benchmarks=KNOWN)
        parallel = harness.run_suite(
            KNOWN, frames=1, runner=ScriptedRunner(script),
            known_benchmarks=KNOWN, workers=2)
        assert [_outcome_key(o) for o in parallel.outcomes] \
            == [_outcome_key(o) for o in sequential.outcomes]
        assert [o.benchmark for o in parallel.failed] == ["GDL"]
        assert len(parallel.succeeded) == 3

    def test_transient_fault_retried_inside_worker(self):
        runner = ScriptedRunner({"CCS": [CacheCorruptionError]})
        report = harness.run_suite(
            ["CCS"], frames=1, runner=runner, known_benchmarks=KNOWN,
            workers=2, backoff_s=0.01)
        [outcome] = report.outcomes
        assert outcome.ok
        assert outcome.attempts == 2

    def test_unknown_benchmark_skipped_in_order(self):
        report = harness.run_suite(
            ["CCS", "NOPE", "GDL"], frames=1, runner=ScriptedRunner({}),
            known_benchmarks=KNOWN, workers=3)
        assert [(o.benchmark, o.status) for o in report.outcomes] \
            == [("CCS", "ok"), ("NOPE", "skipped"), ("GDL", "ok")]
        assert "valid:" in report.outcomes[1].error

    def test_multiple_kinds_preserve_pair_order(self):
        report = harness.run_suite(
            ["CCS", "GDL"], kinds=("libra", "ptr"), frames=1,
            runner=ScriptedRunner({}), known_benchmarks=KNOWN, workers=4)
        assert [(o.benchmark, o.kind) for o in report.outcomes] == [
            ("CCS", "libra"), ("CCS", "ptr"),
            ("GDL", "libra"), ("GDL", "ptr")]


class TestWorkerIsolation:
    def test_timeout_fires_inside_worker(self):
        """SIGALRM engages on each worker's main thread, so a hung
        benchmark times out without stalling its siblings."""
        report = harness.run_suite(
            ["CCS", "GDL"], frames=1, timeout_s=0.2, max_attempts=1,
            runner=_sleep_runner, known_benchmarks=KNOWN, workers=2)
        assert len(report.failed) == 2
        for outcome in report.outcomes:
            assert outcome.error_type \
                == BenchmarkTimeoutError.__name__
            assert outcome.elapsed_s < 10.0

    def test_unpicklable_runner_fails_only_its_pairs(self):
        def local_runner(benchmark, kind, frames=1, **kw):
            raise AssertionError("never runs: closures cannot pickle")

        report = harness.run_suite(
            ["CCS"], frames=1, runner=local_runner,
            known_benchmarks=KNOWN, workers=2)
        [outcome] = report.outcomes
        assert outcome.status == "failed"
        assert "worker failed" in outcome.error


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigValidationError):
            harness.run_suite(["CCS"], workers=0,
                              runner=ScriptedRunner({}),
                              known_benchmarks=KNOWN)

    def test_workers_one_stays_sequential(self):
        runner = ScriptedRunner({})
        report = harness.run_suite(["CCS", "GDL"], frames=1,
                                   runner=runner,
                                   known_benchmarks=KNOWN, workers=1)
        # Sequential mode shares the parent's runner instance, so its
        # call log is visible — the parallel path cannot offer this.
        assert runner.calls == [("CCS", "libra"), ("GDL", "libra")]
        assert len(report.succeeded) == 2


class TestCLI:
    def test_workers_flag_passed_through(self, monkeypatch, capsys):
        seen = {}

        def fake_run_suite(names, kinds, frames, timeout_s,
                           max_attempts, workers):
            seen.update(names=list(names), kinds=tuple(kinds),
                        frames=frames, workers=workers)
            return harness.SuiteReport()

        monkeypatch.setattr(harness, "run_suite", fake_run_suite)
        code = main(["suite", "--benchmarks", "CCS,GDL",
                     "--workers", "3", "--frames", "2"])
        assert code == 0
        assert seen["workers"] == 3
        assert seen["names"] == ["CCS", "GDL"]

    def test_invalid_workers_exits_2(self, capsys):
        assert main(["suite", "--benchmarks", "CCS",
                     "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
