"""Tests for the Parallel Frame Rendering (PFR) baseline."""

import pytest

from repro.config import RasterUnitConfig, small_config
from repro.gpu.pfr import PFRSimulator
from repro.gpu.workload import FrameTrace, TileWorkload


def traces(n=4, insts=3000):
    out = []
    for frame in range(n):
        workloads = {}
        for y in range(2):
            for x in range(2):
                base = (y * 2 + x) * 1000
                workloads[(x, y)] = TileWorkload(
                    tile=(x, y), instructions=insts, fragments=insts // 8,
                    texture_lines=[base + i for i in range(10)],
                    texture_fetches=20, num_primitives=1,
                    prim_fragments=[insts // 8],
                    prim_instructions=[insts])
        out.append(FrameTrace(frame_index=frame, tiles_x=2, tiles_y=2,
                              tile_size=32, workloads=workloads,
                              geometry_cycles=500))
    return out


def config():
    return small_config(num_raster_units=2,
                        raster_unit=RasterUnitConfig(num_cores=4))


class TestPFR:
    def test_requires_two_clusters(self):
        with pytest.raises(ValueError):
            PFRSimulator(small_config(num_raster_units=1))

    def test_runs_all_frames(self):
        result = PFRSimulator(config()).run(traces(4))
        assert result.frames == 4
        assert len(result.pair_cycles) == 2
        assert result.total_cycles == sum(result.pair_cycles)

    def test_odd_frame_count(self):
        result = PFRSimulator(config()).run(traces(3))
        assert result.frames == 3
        assert len(result.pair_cycles) == 2

    def test_pair_faster_than_serial_frames(self):
        pfr = PFRSimulator(config()).run(traces(2))
        # A single 4-core cluster rendering both frames back to back
        # takes roughly twice as long as the pair in parallel.
        solo = PFRSimulator(config())
        one = solo.run(traces(1))
        assert pfr.pair_cycles[0] < 2 * one.pair_cycles[0]

    def test_stats_accumulate(self):
        result = PFRSimulator(config()).run(traces(4))
        assert result.texture_accesses > 0
        assert result.mean_texture_latency > 0
        assert result.dram_accesses > 0

    def test_interframe_texture_locality(self):
        # Consecutive frames share texture lines; the second frame of a
        # pair should see L1/L2 hits from the first, so per-frame DRAM
        # is lower than 2x a single frame's.
        pair = PFRSimulator(config()).run(traces(2))
        single = PFRSimulator(config()).run(traces(1))
        assert pair.dram_accesses < 2 * single.dram_accesses
