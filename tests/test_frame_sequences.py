"""Multi-frame behaviors of the frame driver: warm-up, isolation, reuse."""

from repro.config import RasterUnitConfig, small_config
from repro.core.scheduler import ZOrderScheduler
from repro.gpu.frame import FrameDriver
from repro.gpu.workload import FrameTrace, TileWorkload


def trace(frame_index=0, lines_base=0):
    workloads = {}
    for y in range(2):
        for x in range(2):
            start = lines_base + (y * 2 + x) * 100
            workloads[(x, y)] = TileWorkload(
                tile=(x, y), instructions=2000, fragments=250,
                texture_lines=list(range(start, start + 30)),
                texture_fetches=60, num_primitives=1,
                prim_fragments=[250], prim_instructions=[2000])
    return FrameTrace(frame_index=frame_index, tiles_x=2, tiles_y=2,
                      tile_size=32, workloads=workloads,
                      geometry_cycles=500)


def driver():
    cfg = small_config(num_raster_units=2,
                       raster_unit=RasterUnitConfig(num_cores=4))
    return FrameDriver(cfg, ZOrderScheduler())


class TestCacheWarmup:
    def test_repeated_identical_frame_gets_cheaper(self):
        d = driver()
        first = d.run_frame(trace(0))
        second = d.run_frame(trace(1))
        # Same texture lines: the second frame hits in L1/L2.
        assert second.raster_dram_accesses < first.raster_dram_accesses
        assert second.texture_hit_ratio > first.texture_hit_ratio

    def test_disjoint_frame_stays_cold(self):
        d = driver()
        d.run_frame(trace(0, lines_base=0))
        cold = d.run_frame(trace(1, lines_base=1_000_000))
        warm_driver = driver()
        warm_driver.run_frame(trace(0, lines_base=0))
        warm = warm_driver.run_frame(trace(1, lines_base=0))
        assert cold.raster_dram_accesses > warm.raster_dram_accesses


class TestPerFrameIsolation:
    def test_stats_do_not_leak_across_frames(self):
        d = driver()
        first = d.run_frame(trace(0))
        second = d.run_frame(trace(1))
        # Energy counts are per frame, not cumulative.
        assert second.energy_counts.core_instructions == \
            first.energy_counts.core_instructions
        assert second.tiles_completed == 4

    def test_interval_series_is_per_frame(self):
        d = driver()
        first = d.run_frame(trace(0))
        second = d.run_frame(trace(1))
        # The second frame's series is a fresh slice beginning at its own
        # raster phase: its total matches the frame's raster DRAM count
        # (geometry intervals land in no raster slice).
        assert abs(sum(second.dram_interval_requests)
                   - second.raster_dram_accesses) <= 5
        # And it does not contain the first frame's traffic.
        assert sum(second.dram_interval_requests) < \
            sum(first.dram_interval_requests)


class TestDeterminismAcrossDrivers:
    def test_fresh_drivers_reproduce_exactly(self):
        a = driver()
        b = driver()
        results_a = [a.run_frame(trace(i)) for i in range(3)]
        results_b = [b.run_frame(trace(i)) for i in range(3)]
        for ra, rb in zip(results_a, results_b):
            assert ra.total_cycles == rb.total_cycles
            assert ra.raster_dram_accesses == rb.raster_dram_accesses
            assert ra.per_tile_dram == rb.per_tile_dram
