"""Tests for repro.geometry.clipping (frustum cull + Sutherland-Hodgman)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.clipping import (classify_triangle, clip_triangle,
                                     cull_backface)


def tri(*vertices):
    return np.array(vertices, dtype=np.float64)


UVS = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])


class TestClassify:
    def test_inside(self):
        clip = tri([0, 0, 0, 1], [0.5, 0, 0, 1], [0, 0.5, 0, 1])
        assert classify_triangle(clip) == "inside"

    def test_outside_one_plane(self):
        clip = tri([2, 0, 0, 1], [3, 0, 0, 1], [2, 1, 0, 1])
        assert classify_triangle(clip) == "outside"

    def test_straddling(self):
        clip = tri([0, 0, 0, 1], [3, 0, 0, 1], [0, 1, 0, 1])
        assert classify_triangle(clip) == "straddling"

    def test_spanning_vertices_outside_different_planes(self):
        # Each vertex is outside a different plane, but the triangle still
        # crosses the frustum -> must not be trivially rejected.
        clip = tri([-3, 0, 0, 1], [3, 0.1, 0, 1], [0, 3, 0, 1])
        assert classify_triangle(clip) == "straddling"


class TestClipTriangle:
    def test_inside_passthrough(self):
        clip = tri([0, 0, 0, 1], [0.5, 0, 0, 1], [0, 0.5, 0, 1])
        out = clip_triangle(clip, UVS)
        assert len(out) == 1
        assert np.allclose(out[0][0], clip)

    def test_outside_removed(self):
        clip = tri([0, 0, 5, 1], [1, 0, 5, 1], [0, 1, 5, 1])
        assert clip_triangle(clip, UVS) == []

    def test_corner_clip_produces_fan(self):
        # A triangle poking out of the right plane gets clipped into >= 1
        # triangles whose vertices all satisfy |x| <= w.
        clip = tri([0, 0, 0, 1], [2, 0, 0, 1], [0, 0.5, 0, 1])
        out = clip_triangle(clip, UVS)
        assert len(out) >= 1
        for positions, _ in out:
            assert (positions[:, 0] <= positions[:, 3] + 1e-9).all()

    def test_clip_preserves_total_containment(self):
        clip = tri([-2, -2, 0, 1], [2, -2, 0, 1], [0, 3, 0, 1])
        for positions, _ in clip_triangle(clip, UVS):
            w = positions[:, 3]
            for axis in range(3):
                assert (np.abs(positions[:, axis]) <= w + 1e-9).all()

    def test_uv_interpolated_at_boundary(self):
        # Edge from u=0 to u=1 clipped at x=w midpoint -> u=0.5 appears.
        clip = tri([0, 0, 0, 1], [2, 0, 0, 1], [0, 1, 0, 1])
        out = clip_triangle(clip, UVS)
        all_uvs = np.concatenate([uv for _, uv in out])
        assert np.any(np.isclose(all_uvs[:, 0], 0.5))

    @given(st.integers(0, 10_000))
    def test_clipped_output_always_inside(self, seed):
        rng = np.random.default_rng(seed)
        clip = rng.uniform(-3, 3, size=(3, 4))
        clip[:, 3] = rng.uniform(0.5, 2.0, size=3)
        for positions, _ in clip_triangle(clip, UVS):
            w = positions[:, 3]
            for axis in range(3):
                assert (np.abs(positions[:, axis]) <= w + 1e-6).all()


class TestBackfaceCull:
    def test_degenerate_always_culled(self):
        assert cull_backface([(0, 0), (1, 1), (2, 2)])

    def test_opposite_windings_differ(self):
        ccw = [(0, 0), (1, 0), (0, 1)]
        cw = [(0, 0), (0, 1), (1, 0)]
        assert cull_backface(ccw) != cull_backface(cw)
