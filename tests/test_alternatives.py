"""Tests for the ablation schedulers and the affinity dispenser."""

import pytest
from hypothesis import given, strategies as st

from repro.core.alternatives import (OracleTemperatureScheduler,
                                     RandomScheduler, ReverseFrameScheduler,
                                     TraversalScheduler)
from repro.core.scheduler import AffinityQueueDispenser
from repro.gpu.workload import FrameTrace, TileWorkload


def trace(tiles_x=4, tiles_y=4, workloads=None):
    return FrameTrace(frame_index=0, tiles_x=tiles_x, tiles_y=tiles_y,
                      tile_size=32, workloads=workloads or {})


def drain_all(dispenser, pattern=(0, 1)):
    tiles = []
    i = 0
    while True:
        batch = dispenser.next_batch(pattern[i % len(pattern)])
        if batch is None:
            return tiles
        tiles.extend(batch)
        i += 1


class TestAffinityQueueDispenser:
    def test_tiles_one_at_a_time(self):
        d = AffinityQueueDispenser([[1, 2], [3, 4]])
        assert d.next_batch(0) == [1]
        assert d.next_batch(0) == [2]

    def test_units_get_distinct_supertiles(self):
        d = AffinityQueueDispenser([[1, 2], [3, 4]])
        assert d.next_batch(0) == [1]
        assert d.next_batch(1) == [3]
        assert d.next_batch(1) == [4]
        assert d.next_batch(0) == [2]

    def test_steal_at_tail(self):
        d = AffinityQueueDispenser([[1, 2, 3, 4]])
        assert d.next_batch(0) == [1]
        assert d.next_batch(1) == [4]  # stolen from unit 0's queue end
        assert sorted(b[0] for b in (d.next_batch(0), d.next_batch(1))) \
            == [2, 3]
        assert d.next_batch(0) is None

    @given(n=st.integers(0, 20), pattern=st.lists(st.integers(0, 2),
                                                  min_size=1, max_size=4))
    def test_conservation(self, n, pattern):
        batches = [[(i, j) for j in range(2)] for i in range(n)]
        d = AffinityQueueDispenser(batches)
        tiles = drain_all(d, pattern)
        assert sorted(tiles) == sorted(t for b in batches for t in b)


class TestTraversalScheduler:
    @pytest.mark.parametrize("order", ["scanline", "hilbert",
                                       "boustrophedon"])
    def test_covers_grid(self, order):
        decision = TraversalScheduler(order).begin_frame(trace())
        tiles = drain_all(decision.dispenser)
        assert len(set(tiles)) == 16
        assert decision.order == order

    def test_unknown_order_fails_at_frame(self):
        scheduler = TraversalScheduler("spiral")
        with pytest.raises(ValueError):
            scheduler.begin_frame(trace())


class TestRandomScheduler:
    def test_covers_grid(self):
        decision = RandomScheduler(size=2, seed=1).begin_frame(trace())
        tiles = drain_all(decision.dispenser)
        assert len(set(tiles)) == 16

    def test_deterministic_per_seed(self):
        a = drain_all(RandomScheduler(seed=5).begin_frame(trace()).dispenser)
        b = drain_all(RandomScheduler(seed=5).begin_frame(trace()).dispenser)
        assert a == b

    def test_varies_across_frames(self):
        scheduler = RandomScheduler(seed=5)
        a = drain_all(scheduler.begin_frame(trace()).dispenser)
        b = drain_all(scheduler.begin_frame(trace()).dispenser)
        assert a != b  # reshuffled every frame

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            RandomScheduler(size=0)


class TestOracleScheduler:
    def test_ranks_by_current_frame(self):
        workloads = {
            (0, 0): TileWorkload(tile=(0, 0), instructions=1000,
                                 texture_lines=list(range(500)),
                                 texture_fetches=500),
            (3, 3): TileWorkload(tile=(3, 3), instructions=1000,
                                 texture_lines=[1], texture_fetches=1),
        }
        decision = OracleTemperatureScheduler(2).begin_frame(
            trace(workloads=workloads))
        assert decision.order == "temperature"
        hot_first = [decision.dispenser.next_batch(0)[0]
                     for _ in range(4)]
        assert (0, 0) in hot_first

    def test_covers_grid(self):
        decision = OracleTemperatureScheduler(2).begin_frame(trace())
        tiles = drain_all(decision.dispenser)
        assert len(set(tiles)) == 16


class TestReverseFrameScheduler:
    def test_first_frame_morton(self):
        scheduler = ReverseFrameScheduler()
        first = drain_all(scheduler.begin_frame(trace()).dispenser,
                          pattern=(0,))
        assert first[0] == (0, 0)

    def test_second_frame_reversed(self):
        scheduler = ReverseFrameScheduler()
        first = drain_all(scheduler.begin_frame(trace()).dispenser,
                          pattern=(0,))
        second = drain_all(scheduler.begin_frame(trace()).dispenser,
                           pattern=(0,))
        assert second == list(reversed(first))

    def test_third_frame_reverses_again(self):
        scheduler = ReverseFrameScheduler()
        first = drain_all(scheduler.begin_frame(trace()).dispenser,
                          pattern=(0,))
        drain_all(scheduler.begin_frame(trace()).dispenser, pattern=(0,))
        third = drain_all(scheduler.begin_frame(trace()).dispenser,
                          pattern=(0,))
        assert third == first
