"""End-to-end integration tests: scene -> trace -> timing -> results.

These exercise the full stack at a small resolution and assert the
*directional* properties the paper's evaluation depends on.
"""

import pytest

from repro import (GPUSimulator, LibraScheduler, TraceBuilder,
                   baseline_config, libra_config, make_scene_builder)
from repro.core import TemperatureScheduler
from repro.workloads.params import HotspotSpec, WorkloadParams
from repro.workloads.scene import SceneBuilder

WIDTH, HEIGHT = 256, 128


@pytest.fixture(scope="module")
def hot_traces():
    """A deliberately memory-heavy workload (dense multitexture stacks)."""
    params = WorkloadParams(
        name="HOT", title="Hot", style="2D", seed=7,
        memory_intensive=True, roaming_sprites=8,
        hotspots=(HotspotSpec(center=(0.3, 0.5), sprites=10, layers=5,
                              sprite_size=0.25, uv_scale=1.8, cells=24),
                  HotspotSpec(center=(0.75, 0.5), sprites=10, layers=5,
                              sprite_size=0.25, uv_scale=1.8, cells=24)),
        hud_elements=4, fragment_instructions=8, texture_fetches=3,
        num_textures=8, texture_size=256, detail_texture_size=256,
        scroll_speed=4.0)
    scenes = SceneBuilder(params, WIDTH, HEIGHT)
    return TraceBuilder(scenes, WIDTH, HEIGHT, 32).build_many(6)


@pytest.fixture(scope="module")
def suite_traces():
    builder = make_scene_builder("GDL", WIDTH, HEIGHT)
    return TraceBuilder(builder, WIDTH, HEIGHT, 32).build_many(4)


def run(traces, config, scheduler=None, **kwargs):
    return GPUSimulator(config, scheduler=scheduler, **kwargs).run(traces)


class TestParallelTileRendering:
    def test_ptr_beats_baseline(self, hot_traces):
        base = run(hot_traces,
                   baseline_config(screen_width=WIDTH, screen_height=HEIGHT))
        ptr = run(hot_traces,
                  libra_config(screen_width=WIDTH, screen_height=HEIGHT))
        assert ptr.speedup_over(base) > 1.0

    def test_same_work_done(self, hot_traces):
        base = run(hot_traces,
                   baseline_config(screen_width=WIDTH, screen_height=HEIGHT))
        ptr = run(hot_traces,
                  libra_config(screen_width=WIDTH, screen_height=HEIGHT))
        base_tiles = sum(f.tiles_completed for f in base.frames)
        ptr_tiles = sum(f.tiles_completed for f in ptr.frames)
        assert base_tiles == ptr_tiles

    def test_ideal_memory_upper_bounds_real(self, hot_traces):
        cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
        real = run(hot_traces, cfg)
        ideal = run(hot_traces, cfg, ideal_memory=True)
        assert ideal.total_cycles <= real.total_cycles


class TestTemperatureScheduling:
    def test_temperature_flattens_or_matches_dram_series(self, hot_traces):
        from repro.stats import coefficient_of_variation
        cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
        ptr = run(hot_traces, cfg)
        temp = run(hot_traces, cfg, scheduler=TemperatureScheduler(2))
        cov_ptr = coefficient_of_variation(
            ptr.frames[-1].dram_interval_requests)
        cov_temp = coefficient_of_variation(
            temp.frames[-1].dram_interval_requests)
        assert cov_temp <= cov_ptr * 1.25  # never dramatically burstier

    def test_libra_runs_and_switches_orders(self, hot_traces):
        cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
        scheduler = LibraScheduler(cfg.scheduler)
        result = run(hot_traces, cfg, scheduler=scheduler)
        assert result.num_frames == len(hot_traces)
        assert len(scheduler.log) == len(hot_traces)

    def test_libra_not_catastrophic(self, hot_traces):
        cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
        ptr = run(hot_traces, cfg)
        libra = run(hot_traces, cfg,
                    scheduler=LibraScheduler(cfg.scheduler))
        assert libra.speedup_over(ptr) > 0.85


class TestComputeWorkloads:
    def test_compute_app_low_memory_fraction(self, suite_traces):
        cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
        real = run(suite_traces, cfg)
        ideal = run(suite_traces, cfg, ideal_memory=True)
        fraction = 1 - ideal.total_cycles / real.total_cycles
        assert fraction < 0.25

    def test_compute_app_high_hit_ratio(self, suite_traces):
        cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
        result = run(suite_traces, cfg)
        assert result.mean_texture_hit_ratio > 0.8


class TestEnergyAccounting:
    def test_faster_run_saves_static_energy(self, hot_traces):
        base = run(hot_traces,
                   baseline_config(screen_width=WIDTH, screen_height=HEIGHT))
        ptr = run(hot_traces,
                  libra_config(screen_width=WIDTH, screen_height=HEIGHT))
        base_static = sum(f.energy.static_j for f in base.frames)
        ptr_static = sum(f.energy.static_j for f in ptr.frames)
        if ptr.total_cycles < base.total_cycles:
            assert ptr_static < base_static

    def test_dram_energy_tracks_accesses(self, hot_traces):
        cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
        result = run(hot_traces, cfg)
        dram_j = sum(f.energy.dynamic_dram_j for f in result.frames)
        assert dram_j > 0
