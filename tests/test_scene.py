"""Tests for procedural scene synthesis (determinism + coherence)."""

import numpy as np
import pytest

from repro.workloads.params import HotspotSpec, WorkloadParams
from repro.workloads.scene import SceneBuilder


def params(**overrides):
    defaults = dict(
        name="TST", title="Test Game", style="2D", seed=42,
        memory_intensive=True,
        roaming_sprites=6,
        hotspots=(HotspotSpec(center=(0.5, 0.5), sprites=4, layers=2),),
        hud_elements=2, num_textures=4,
        texture_size=64, detail_texture_size=64,
    )
    defaults.update(overrides)
    return WorkloadParams(**defaults)


class TestDeterminism:
    def test_same_frame_identical(self):
        a = SceneBuilder(params(), 256, 128).frame(3)
        b = SceneBuilder(params(), 256, 128).frame(3)
        assert len(a.draws) == len(b.draws)
        for da, db in zip(a.draws, b.draws):
            assert np.allclose(da.mesh.positions, db.mesh.positions)
            assert np.allclose(da.mesh.uvs, db.mesh.uvs)
            assert da.texture_id == db.texture_id

    def test_different_seeds_differ(self):
        a = SceneBuilder(params(seed=1), 256, 128).frame(0)
        b = SceneBuilder(params(seed=2), 256, 128).frame(0)
        moved = any(
            not np.allclose(da.mesh.positions, db.mesh.positions)
            for da, db in zip(a.draws, b.draws))
        assert moved


class TestCoherence:
    def test_consecutive_frames_move_smoothly(self):
        builder = SceneBuilder(params(scroll_speed=4.0, wobble=1.0),
                               256, 128)
        a = builder.frame(5)
        b = builder.frame(6)
        # Per-draw positional delta stays small (sub-tile motion).
        for da, db in zip(a.draws, b.draws):
            if len(da.mesh.positions) != len(db.mesh.positions):
                continue
            delta = np.abs(da.mesh.positions - db.mesh.positions).max()
            assert delta < 32.0

    def test_draw_count_stable_across_frames(self):
        builder = SceneBuilder(params(), 256, 128)
        counts = {len(builder.frame(i).draws) for i in range(5)}
        assert len(counts) == 1


class TestStructure:
    def test_layer_counts(self):
        p = params()
        scene = SceneBuilder(p, 256, 128).frame(0)
        expected = (p.background_layers + p.roaming_sprites
                    + sum(h.sprites * h.layers for h in p.hotspots)
                    + p.hud_elements)
        assert len(scene.draws) == expected

    def test_terrain_adds_draw(self):
        without = SceneBuilder(params(), 256, 128).frame(0)
        with_terrain = SceneBuilder(params(terrain_cells=8), 256, 128).frame(0)
        assert len(with_terrain.draws) == len(without.draws) + 1

    def test_texture_ids_within_set(self):
        builder = SceneBuilder(params(), 256, 128)
        scene = builder.frame(0)
        for draw in scene.draws:
            assert draw.texture_id in builder.textures

    def test_hud_uses_alpha_blend(self):
        p = params()
        scene = SceneBuilder(p, 256, 128).frame(0)
        hud_draws = scene.draws[-p.hud_elements:]
        assert all(d.blend == "alpha" for d in hud_draws)

    def test_uv_windows_within_wrap_range(self):
        builder = SceneBuilder(params(), 256, 128)
        scene = builder.frame(0)
        for draw in scene.draws:
            assert draw.mesh.uvs.min() >= -1e-9
            assert draw.mesh.uvs.max() <= 2.5  # windows + scroll offsets

    def test_memory_profile_texel_density_applied(self):
        dense = SceneBuilder(params(texel_density=1.0), 256, 128)
        sparse = SceneBuilder(params(texel_density=0.25), 256, 128)
        # Roamer windows shrink with density: compare UV spans of the
        # same roamer draw.
        p = params()
        idx = p.background_layers  # first roamer draw
        d_uv = dense.frame(0).draws[idx].mesh.uvs
        s_uv = sparse.frame(0).draws[idx].mesh.uvs
        d_span = d_uv[:, 0].max() - d_uv[:, 0].min()
        s_span = s_uv[:, 0].max() - s_uv[:, 0].min()
        assert s_span < d_span or d_span == pytest.approx(1.0)


class TestParamsValidation:
    def test_rejects_unknown_style(self):
        with pytest.raises(ValueError):
            params(style="4D")

    def test_rejects_non_pow2_texture(self):
        with pytest.raises(ValueError):
            params(texture_size=100)

    def test_rejects_zero_textures(self):
        with pytest.raises(ValueError):
            params(num_textures=0)

    def test_total_sprites(self):
        p = params()
        assert p.total_sprites == 6 + 4 * 2
