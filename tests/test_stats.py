"""Tests for statistics helpers, heatmaps and report formatting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats.collector import (arithmetic_mean,
                                   coefficient_of_variation,
                                   geometric_mean, per_tile_difference_cdf,
                                   rebin_series)
from repro.stats.heatmap import (hot_cold_summary, render_ascii,
                                 supertile_matrix, tile_matrix)
from repro.stats.report import (experiment_header, format_series,
                                format_table, percent, summary_line)


class TestMeans:
    def test_geometric_mean_of_speedups(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_ignores_nonpositive(self):
        assert geometric_mean([2.0, 0.0, -1.0]) == pytest.approx(2.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0

    @given(st.lists(st.floats(0.5, 2.0), min_size=1, max_size=20))
    def test_geomean_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestSeries:
    def test_rebin_sums_groups(self):
        assert rebin_series([1, 2, 3, 4, 5], 2) == [3, 7, 5]

    def test_rebin_factor_one_identity(self):
        assert rebin_series([1, 2, 3], 1) == [1, 2, 3]

    def test_rebin_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            rebin_series([1], 0)

    def test_cov_of_constant_series_zero(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_cov_flat_less_than_bursty(self):
        flat = [10, 10, 10, 10]
        bursty = [0, 0, 0, 40]
        assert coefficient_of_variation(flat) < \
            coefficient_of_variation(bursty)

    def test_cov_empty(self):
        assert coefficient_of_variation([]) == 0.0


class TestDifferenceCDF:
    def test_identical_frames_all_below_any_threshold(self):
        frame = {(0, 0): 10, (1, 0): 20}
        cdf = per_tile_difference_cdf(frame, frame, [0.0, 0.2])
        assert cdf == [(0.0, 1.0), (0.2, 1.0)]

    def test_changed_tile_counted(self):
        a = {(0, 0): 10, (1, 0): 100}
        b = {(0, 0): 10, (1, 0): 50}
        cdf = per_tile_difference_cdf(a, b, [0.2, 0.6])
        assert cdf[0][1] == pytest.approx(0.5)
        assert cdf[1][1] == pytest.approx(1.0)

    def test_tile_missing_from_one_frame(self):
        cdf = per_tile_difference_cdf({(0, 0): 10}, {}, [0.5, 1.0])
        assert cdf[0][1] == 0.0
        assert cdf[1][1] == 1.0

    def test_empty_frames(self):
        assert per_tile_difference_cdf({}, {}, [0.5]) == [(0.5, 1.0)]


class TestHeatmap:
    def test_tile_matrix_layout(self):
        m = tile_matrix({(1, 0): 5.0, (0, 2): 3.0}, 3, 3)
        assert m[0, 1] == 5.0
        assert m[2, 0] == 3.0
        assert m.sum() == 8.0

    def test_tile_matrix_ignores_out_of_range(self):
        m = tile_matrix({(9, 9): 5.0}, 2, 2)
        assert m.sum() == 0.0

    def test_supertile_matrix_sums_blocks(self):
        m = np.arange(16, dtype=float).reshape(4, 4)
        s = supertile_matrix(m, 2)
        assert s.shape == (2, 2)
        assert s[0, 0] == 0 + 1 + 4 + 5

    def test_supertile_matrix_ragged(self):
        m = np.ones((5, 5))
        s = supertile_matrix(m, 2)
        assert s.shape == (3, 3)
        assert s[2, 2] == 1.0

    def test_render_ascii_shape(self):
        art = render_ascii(np.array([[0.0, 1.0], [0.5, 0.25]]))
        rows = art.split("\n")
        assert len(rows) == 2
        assert all(len(r) == 2 for r in rows)
        assert rows[0][1] == "@"  # the peak gets the darkest shade

    def test_render_ascii_all_zero(self):
        art = render_ascii(np.zeros((2, 2)))
        assert set(art) <= {" ", "\n"}

    def test_hot_cold_summary(self):
        per_tile = {(i, 0): (100.0 if i == 0 else 1.0) for i in range(10)}
        summary = hot_cold_summary(per_tile, hot_fraction=0.1)
        assert summary["hot_tiles"] == 1
        assert summary["hot_share"] == pytest.approx(100 / 109)

    def test_hot_cold_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            hot_cold_summary({(0, 0): 1.0}, hot_fraction=0.0)


class TestReport:
    def test_format_table_aligns(self):
        table = format_table(("a", "bbbb"), [[1, 2], [333, 4]])
        data_lines = table.split("\n")[2:]
        # Second column starts at the same offset on every data row.
        assert data_lines[0].index("2") == data_lines[1].index("4")

    def test_format_table_title(self):
        assert format_table(("x",), [[1]], title="T").startswith("T\n")

    def test_format_series_sparkline(self):
        line = format_series("s", [0, 1, 2, 3])
        assert line.startswith("s: [")
        assert "peak=3" in line

    def test_summary_line_greppable(self):
        line = summary_line("speedup", 1.234, paper=1.209)
        assert line.startswith("RESULT speedup:")
        assert "paper=1.209" in line

    def test_percent(self):
        assert percent(0.123) == "12.3%"

    def test_experiment_header_contains_claim(self):
        header = experiment_header("Fig. 11", "20.9% speedup")
        assert "Fig. 11" in header and "20.9%" in header
