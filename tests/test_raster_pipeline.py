"""Tests for the functional per-tile raster pipeline."""

import numpy as np
import pytest

from repro.geometry import DrawCall, GeometryPipeline, ShaderProfile, quad_mesh
from repro.geometry.vecmath import orthographic
from repro.raster.pipeline import RasterPipeline
from repro.raster.texture import TextureSet
from repro.tiling.engine import TilingEngine

CAMERA = orthographic(0.0, 128.0, 0.0, 128.0, -10.0, 10.0)


def textures():
    ts = TextureSet()
    for i in range(3):
        ts.add(64, 64, seed=i)
    return ts


def tiled(draws):
    out = GeometryPipeline(128, 128).run(draws, CAMERA)
    return TilingEngine(4, 4, 32).tile_frame(out.primitives)


def pipeline(ts=None, **kwargs):
    return RasterPipeline(128, 128, 32, ts or textures(), **kwargs)


def sprite(x, y, size, z=0.0, texture_id=0, blend="opaque", fetches=1,
           insts=8):
    return DrawCall(mesh=quad_mesh(x, y, size, size, z=z),
                    texture_id=texture_id,
                    shader=ShaderProfile(fragment_instructions=insts,
                                         texture_fetches=fetches),
                    blend=blend, depth_write=(blend == "opaque"))


class TestTileProcessing:
    def test_full_tile_coverage(self):
        frame = tiled([sprite(0, 0, 128)])
        rp = pipeline()
        result = rp.process_tile((0, 0), frame.primitives_for((0, 0)))
        assert result.fragments_shaded == 1024

    def test_instructions_scale_with_fragments(self):
        frame = tiled([sprite(0, 0, 128, insts=8)])
        rp = pipeline()
        result = rp.process_tile((0, 0), frame.primitives_for((0, 0)))
        assert result.instructions == result.fragments_shaded * 8

    def test_early_z_rejects_occluded_layer(self):
        # Far quad drawn after a near opaque quad: everything rejected.
        near = sprite(0, 0, 128, z=1.0)
        far = sprite(0, 0, 128, z=0.0)
        frame = tiled([near, far])
        rp = pipeline()
        result = rp.process_tile((0, 0), frame.primitives_for((0, 0)))
        assert result.fragments_shaded == 1024
        assert result.fragments_early_rejected == 1024

    def test_painter_order_both_layers_shade(self):
        # Back-to-front: both layers survive the depth test.
        far = sprite(0, 0, 128, z=0.0)
        near = sprite(0, 0, 128, z=1.0)
        frame = tiled([far, near])
        rp = pipeline()
        result = rp.process_tile((0, 0), frame.primitives_for((0, 0)))
        assert result.fragments_shaded == 2048
        assert result.fragments_early_rejected == 0

    def test_texture_lines_collected(self):
        frame = tiled([sprite(0, 0, 128)])
        rp = pipeline()
        result = rp.process_tile((0, 0), frame.primitives_for((0, 0)))
        assert result.texture_lines
        assert len(result.texture_lines) == len(set(result.texture_lines))

    def test_multitexture_fetches_extend_footprint(self):
        one = pipeline().process_tile(
            (0, 0), tiled([sprite(0, 0, 128, fetches=1)]).primitives_for((0, 0)))
        three = pipeline().process_tile(
            (0, 0), tiled([sprite(0, 0, 128, fetches=3)]).primitives_for((0, 0)))
        assert len(three.texture_lines) > len(one.texture_lines)
        assert three.texture_fetches == 3 * one.texture_fetches

    def test_texture_fetches_quad_level(self):
        frame = tiled([sprite(0, 0, 128, fetches=2)])
        result = pipeline().process_tile((0, 0),
                                         frame.primitives_for((0, 0)))
        assert result.texture_fetches == result.quads * 2

    def test_prim_lists_align(self):
        frame = tiled([sprite(0, 0, 128), sprite(10, 10, 50)])
        result = pipeline().process_tile((0, 0),
                                         frame.primitives_for((0, 0)))
        assert len(result.prim_fragments) == len(result.prim_instructions)
        assert sum(result.prim_fragments) == result.fragments_shaded
        assert result.num_primitives == len(frame.primitives_for((0, 0)))

    def test_empty_tile_still_flushes(self):
        result = pipeline().process_tile((3, 3), [])
        assert result.fragments_shaded == 0
        assert result.framebuffer_lines

    def test_trace_mode_skips_pixels(self):
        rp = pipeline(shade_colors=False)
        result = rp.process_tile(
            (0, 0), tiled([sprite(0, 0, 128)]).primitives_for((0, 0)))
        assert result.pixels is None
        assert result.instructions > 0


class TestFrameRendering:
    def test_render_full_frame(self):
        frame = tiled([sprite(0, 0, 128, texture_id=1)])
        rp = pipeline()
        image = rp.render_frame(frame)
        assert image.shape == (128, 128, 4)
        assert image[..., 3].min() >= 0.0

    def test_result_independent_of_tile_order(self):
        draws = [sprite(0, 0, 128, texture_id=0),
                 sprite(20, 20, 60, z=1.0, texture_id=1),
                 sprite(40, 10, 50, z=2.0, texture_id=2, blend="alpha")]
        frame = tiled(draws)
        forward = pipeline().render_frame(frame).copy()
        frame.default_order = list(reversed(frame.default_order))
        backward = pipeline().render_frame(frame)
        assert np.allclose(forward, backward)

    def test_blending_changes_output(self):
        base = tiled([sprite(0, 0, 128, texture_id=0)])
        layered = tiled([sprite(0, 0, 128, texture_id=0),
                         sprite(0, 0, 128, z=1.0, texture_id=1,
                                blend="alpha")])
        a = pipeline().render_frame(base).copy()
        b = pipeline().render_frame(layered)
        assert not np.allclose(a, b)
