#!/usr/bin/env python
"""Quickstart: simulate one game on the baseline GPU, PTR, and LIBRA.

Builds frame traces for the Candy-Crush-style benchmark (CCS), runs the
three machine configurations of the paper, and prints the headline
numbers: speedup, FPS, texture behaviour and energy.

Run time: about a minute at the default (reduced) resolution.

    python examples/quickstart.py [--benchmark CCS] [--frames 6]
"""

import argparse

import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="CCS",
                        choices=repro.benchmark_names())
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=384)
    args = parser.parse_args()

    # 1. Build configuration-independent frame traces: procedural scene
    #    -> geometry pipeline -> tiling -> measured per-tile workloads.
    print(f"Building {args.frames} frames of {args.benchmark} at "
          f"{args.width}x{args.height}...")
    scene_builder = repro.make_scene_builder(args.benchmark, args.width,
                                             args.height)
    traces = repro.TraceBuilder(scene_builder, args.width, args.height,
                                32).build_many(args.frames)
    first = traces[0]
    print(f"  tile grid {first.tiles_x}x{first.tiles_y}, "
          f"{first.total_fragments():,} fragments/frame, "
          f"{first.total_texture_lines():,} texture lines/frame")

    # 2. The three machines of the paper's evaluation.
    baseline_cfg = repro.baseline_config(screen_width=args.width,
                                         screen_height=args.height)
    libra_cfg = repro.libra_config(screen_width=args.width,
                                   screen_height=args.height)
    machines = [
        ("baseline (1 RU x 8 cores)",
         repro.GPUSimulator(baseline_cfg, name="baseline")),
        ("PTR      (2 RU x 4 cores)",
         repro.GPUSimulator(libra_cfg, name="ptr")),
        ("LIBRA    (PTR + scheduler)",
         repro.GPUSimulator(libra_cfg,
                            scheduler=repro.LibraScheduler(
                                libra_cfg.scheduler),
                            name="libra")),
    ]

    # 3. Run and report.
    results = []
    for label, simulator in machines:
        result = simulator.run(traces)
        results.append((label, result))
        print(f"\n{label}")
        print(f"  cycles/frame : {result.total_cycles // len(traces):,}")
        print(f"  fps          : {result.fps:8.1f}")
        print(f"  tex hit ratio: {result.mean_texture_hit_ratio:8.3f}")
        print(f"  tex latency  : {result.mean_texture_latency:8.1f} cyc")
        print(f"  DRAM accesses: {result.raster_dram_accesses:,}")
        print(f"  energy       : {result.total_energy_j * 1000:8.2f} mJ")

    baseline_result = results[0][1]
    print("\nSpeedup over the baseline:")
    for label, result in results[1:]:
        print(f"  {label}: {result.speedup_over(baseline_result):.3f}x")


if __name__ == "__main__":
    main()
