#!/usr/bin/env python
"""Sweep DRAM bandwidth and watch LIBRA's advantage appear.

LIBRA's premise is that memory congestion — not memory *volume* — is
what hurts parallel tile rendering. This example sweeps the DRAM
bandwidth of the simulated machine from starved to generous and plots
(in a table) the speedup of PTR and LIBRA over the serial baseline at
each point. The scheduler's margin over PTR should peak in the congested
middle of the range: with infinite bandwidth there is nothing to smooth,
and when the average demand itself exceeds supply, smoothing cannot help
either.

    python examples/bandwidth_sweep.py --benchmark GrT
"""

import argparse

import repro
from repro.stats import format_table

BANDWIDTHS = (0.05, 0.08, 0.11, 0.16, 0.24, 0.40)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="GrT",
                        choices=repro.benchmark_names())
    parser.add_argument("--frames", type=int, default=5)
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=384)
    args = parser.parse_args()

    scenes = repro.make_scene_builder(args.benchmark, args.width,
                                      args.height)
    traces = repro.TraceBuilder(scenes, args.width, args.height,
                                32).build_many(args.frames)

    rows = []
    for bandwidth in BANDWIDTHS:
        cycles = {}
        for kind in ("baseline", "ptr", "libra"):
            if kind == "baseline":
                config = repro.baseline_config(
                    screen_width=args.width, screen_height=args.height)
                scheduler = None
            else:
                config = repro.libra_config(
                    screen_width=args.width, screen_height=args.height)
                scheduler = (repro.LibraScheduler(config.scheduler)
                             if kind == "libra" else None)
            config.dram.requests_per_cycle = bandwidth
            result = repro.GPUSimulator(config,
                                        scheduler=scheduler).run(traces)
            cycles[kind] = result.total_cycles
        ptr = cycles["baseline"] / cycles["ptr"]
        libra = cycles["baseline"] / cycles["libra"]
        gb_per_s = bandwidth * 64 * 0.8  # lines/cyc -> GB/s at 800 MHz
        rows.append([f"{gb_per_s:.1f} GB/s", f"{ptr:.3f}",
                     f"{libra:.3f}", f"{(libra / ptr - 1) * 100:+.1f}%"])

    print(format_table(
        ("DRAM bandwidth", "PTR speedup", "LIBRA speedup",
         "scheduler margin"),
        rows,
        title=f"{args.benchmark}: speedup over baseline vs DRAM bandwidth"))
    print("\nThe scheduler margin peaks where the memory system is "
          "congested but not\nhopelessly saturated — exactly the regime "
          "the paper targets.")


if __name__ == "__main__":
    main()
