#!/usr/bin/env python
"""Render an actual frame with the functional TBR pipeline.

The library is primarily a timing simulator, but its Raster Pipeline is a
real software renderer: this example renders one frame of a benchmark
through geometry -> binning -> per-tile rasterization -> Early-Z ->
textured shading -> blending -> Color Buffer flush, and writes the result
as a PPM image (viewable almost anywhere) plus an ASCII heatmap of where
the fragments went.

    python examples/render_frame.py --benchmark SuS --out frame.ppm
"""

import argparse

import numpy as np

import repro
from repro.raster import FrameBuffer, RasterPipeline
from repro.stats import render_ascii, tile_matrix
from repro.tiling import TilingEngine


def write_ppm(path: str, image: np.ndarray) -> None:
    """Write an (H, W, 4) float image as a binary PPM file."""
    rgb = (np.clip(image[..., :3], 0.0, 1.0) * 255).astype(np.uint8)
    height, width = rgb.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode())
        handle.write(rgb.tobytes())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="SuS",
                        choices=repro.benchmark_names())
    parser.add_argument("--frame", type=int, default=0)
    parser.add_argument("--width", type=int, default=512)
    parser.add_argument("--height", type=int, default=256)
    parser.add_argument("--out", default="frame.ppm")
    args = parser.parse_args()

    scene_builder = repro.make_scene_builder(args.benchmark, args.width,
                                             args.height)
    scene = scene_builder.frame(args.frame)
    print(f"{args.benchmark} frame {args.frame}: "
          f"{len(scene.draws)} draw calls")

    geometry = repro.GeometryPipeline(args.width, args.height)
    output = geometry.run(scene.draws, scene.view_projection)
    print(f"geometry: {output.stats.triangles_in} triangles in, "
          f"{output.stats.primitives_out} primitives out, "
          f"{output.cycles:,} cycles")

    tiles_x = -(-args.width // 32)
    tiles_y = -(-args.height // 32)
    tiled = TilingEngine(tiles_x, tiles_y, 32).tile_frame(output.primitives)
    print(f"tiling: {tiled.binning_stats.tile_entries} tile entries over "
          f"{tiled.binning_stats.nonempty_tiles} non-empty tiles")

    pipeline = RasterPipeline(
        args.width, args.height, 32, scene_builder.textures,
        shade_colors=True,
        framebuffer=FrameBuffer(args.width, args.height))
    fragments = {}
    for tile in tiled.default_order:
        result = pipeline.process_tile(tile, tiled.primitives_for(tile))
        fragments[tile] = float(result.fragments_shaded)

    write_ppm(args.out, pipeline.framebuffer.image())
    print(f"wrote {args.out}")
    print("\nfragments shaded per tile (darkest = most overdraw):")
    print(render_ascii(tile_matrix(fragments, tiles_x, tiles_y)))


if __name__ == "__main__":
    main()
