#!/usr/bin/env python
"""Watch LIBRA's adaptive controller make its per-frame decisions.

Runs a scene-change scenario — a calm, cache-friendly sequence that
suddenly switches to a chaotic memory-heavy battle — and prints, frame by
frame, what the controller observed (cycles, texture hit ratio) and what
it decided (traversal order, supertile size), illustrating the Figure 10
decision diagram reacting to the scene.

    python examples/adaptive_trace.py --frames 14
"""

import argparse

import repro
from repro.stats import format_table
from repro.workloads.params import HotspotSpec, WorkloadParams
from repro.workloads.scene import SceneBuilder


def calm_params() -> WorkloadParams:
    return WorkloadParams(
        name="CALM", title="Menu Screen", style="2D", seed=7,
        memory_intensive=False, roaming_sprites=12,
        hotspots=(HotspotSpec(center=(0.5, 0.5), sprites=6, layers=2,
                              cells=4),),
        hud_elements=4, fragment_instructions=48, texture_fetches=1,
        num_textures=4, texture_size=128, detail_texture_size=128,
        texel_density=0.3, scroll_speed=1.0)


def battle_params() -> WorkloadParams:
    return WorkloadParams(
        name="BATL", title="Battle Scene", style="2D", seed=7,
        memory_intensive=True, roaming_sprites=24,
        hotspots=(HotspotSpec(center=(0.35, 0.5), sprites=12, layers=6,
                              sprite_size=0.16, uv_scale=1.8, cells=32),
                  HotspotSpec(center=(0.7, 0.45), sprites=12, layers=6,
                              sprite_size=0.16, uv_scale=1.8, cells=32)),
        hud_elements=8, fragment_instructions=8, texture_fetches=3,
        num_textures=12, texture_size=256, detail_texture_size=512,
        scroll_speed=10.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=14)
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=384)
    args = parser.parse_args()

    switch_at = args.frames // 2
    calm = repro.TraceBuilder(
        SceneBuilder(calm_params(), args.width, args.height),
        args.width, args.height, 32)
    battle = repro.TraceBuilder(
        SceneBuilder(battle_params(), args.width, args.height),
        args.width, args.height, 32)
    traces = (calm.build_many(switch_at)
              + battle.build_many(args.frames - switch_at,
                                  start=switch_at))

    config = repro.libra_config(screen_width=args.width,
                                screen_height=args.height)
    scheduler = repro.LibraScheduler(config.scheduler)
    simulator = repro.GPUSimulator(config, scheduler=scheduler)

    rows = []
    for index, trace in enumerate(traces):
        result = simulator.run_frame(trace)
        scene = "menu" if index < switch_at else "BATTLE"
        rows.append([
            index, scene, result.order, result.supertile_size,
            f"{result.texture_hit_ratio:.3f}",
            f"{result.raster_cycles:,}",
            f"{result.raster_dram_accesses:,}",
        ])

    print(format_table(
        ("frame", "scene", "order", "supertile", "tex hit",
         "raster cycles", "DRAM"),
        rows, title="LIBRA adaptive decisions across a scene change"))
    print("\nNote how the controller runs Z-order on the cache-friendly "
          "menu frames\nand switches to temperature order (with supertile "
          "resizing) after the\nbattle starts pressuring memory.")


if __name__ == "__main__":
    main()
