#!/usr/bin/env python
"""Compare every tile-scheduling policy on one workload.

Runs interleaved Z-order (PTR), static supertiles of each size,
fixed-size temperature scheduling, and the full adaptive LIBRA controller
on the same traces, reporting speedup over PTR, texture behaviour and the
burstiness of the DRAM demand (the quantity LIBRA is designed to smooth).

    python examples/scheduler_comparison.py --benchmark GrT
"""

import argparse

import repro
from repro.core import (LibraScheduler, StaticSupertileScheduler,
                        TemperatureScheduler, ZOrderScheduler)
from repro.stats import coefficient_of_variation, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="GrT",
                        choices=repro.benchmark_names())
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=384)
    args = parser.parse_args()

    scene_builder = repro.make_scene_builder(args.benchmark, args.width,
                                             args.height)
    traces = repro.TraceBuilder(scene_builder, args.width, args.height,
                                32).build_many(args.frames)

    def libra_scheduler():
        return LibraScheduler(
            repro.libra_config(screen_width=args.width,
                               screen_height=args.height).scheduler)

    policies = [
        ("PTR (interleaved Z)", ZOrderScheduler),
        ("static supertile 2x2", lambda: StaticSupertileScheduler(2)),
        ("static supertile 4x4", lambda: StaticSupertileScheduler(4)),
        ("static supertile 8x8", lambda: StaticSupertileScheduler(8)),
        ("temperature 4x4", lambda: TemperatureScheduler(4)),
        ("LIBRA (adaptive)", libra_scheduler),
    ]

    rows = []
    ptr_result = None
    for label, factory in policies:
        config = repro.libra_config(screen_width=args.width,
                                    screen_height=args.height)
        simulator = repro.GPUSimulator(config, scheduler=factory(),
                                       name=label)
        result = simulator.run(traces)
        if ptr_result is None:
            ptr_result = result
        burstiness = coefficient_of_variation(
            result.frames[-1].dram_interval_requests)
        rows.append([
            label,
            f"{result.speedup_over(ptr_result):.3f}",
            f"{result.mean_texture_hit_ratio:.3f}",
            f"{result.mean_texture_latency:.1f}",
            f"{result.raster_dram_accesses:,}",
            f"{burstiness:.3f}",
        ])

    print(format_table(
        ("policy", "speedup vs PTR", "tex hit", "tex latency",
         "DRAM accesses", "DRAM burstiness (CoV)"),
        rows,
        title=f"{args.benchmark}: scheduling policies, "
              f"{args.frames} frames at {args.width}x{args.height}"))


if __name__ == "__main__":
    main()
