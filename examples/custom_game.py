#!/usr/bin/env python
"""Define your own workload and explore Raster-Unit scaling.

Shows the full public API surface: build a custom
:class:`~repro.workloads.params.WorkloadParams` (a side-scrolling shooter
with one very hot boss area), trace it, then sweep the number of
four-core Raster Units and compare LIBRA against an equal-core
single-unit baseline — the paper's Figure 18 experiment on your own game.

    python examples/custom_game.py --max-units 4
"""

import argparse

import repro
from repro.stats import format_table, hot_cold_summary
from repro.workloads.params import HotspotSpec, WorkloadParams
from repro.workloads.scene import SceneBuilder


def boss_fight_params() -> WorkloadParams:
    """A hand-written benchmark: scrolling shooter with a boss hotspot."""
    return WorkloadParams(
        name="BOSS", title="Boss Fight 3000", style="2D", seed=1234,
        memory_intensive=True,
        background_layers=2,
        roaming_sprites=20,          # bullets and small enemies
        roaming_size=(0.03, 0.06),
        hotspots=(
            # The boss: a dense stack of large detailed sprites.
            HotspotSpec(center=(0.7, 0.5), radius=0.10, sprites=12,
                        layers=6, sprite_size=0.2, uv_scale=1.8,
                        cells=32),
            # The player + particle effects.
            HotspotSpec(center=(0.2, 0.5), radius=0.08, sprites=8,
                        layers=4, sprite_size=0.12, uv_scale=1.6),
        ),
        hud_elements=6,
        fragment_instructions=10,
        texture_fetches=3,
        num_textures=12,
        texture_size=256,
        detail_texture_size=512,
        scroll_speed=10.0,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=384)
    parser.add_argument("--max-units", type=int, default=4)
    args = parser.parse_args()

    params = boss_fight_params()
    scenes = SceneBuilder(params, args.width, args.height)
    traces = repro.TraceBuilder(scenes, args.width, args.height,
                                32).build_many(args.frames)

    heat = hot_cold_summary(
        {t: float(len(w.texture_lines))
         for t, w in traces[0].workloads.items()}, hot_fraction=0.1)
    print(f"{params.title}: hottest 10% of tiles generate "
          f"{heat['hot_share'] * 100:.0f}% of the texture footprint\n")

    rows = []
    for units in range(2, args.max_units + 1):
        baseline_cfg = repro.baseline_config(
            screen_width=args.width, screen_height=args.height,
            raster_unit=repro.RasterUnitConfig(num_cores=4 * units))
        libra_cfg = repro.libra_config(
            num_raster_units=units, cores_per_unit=4,
            screen_width=args.width, screen_height=args.height)
        baseline = repro.GPUSimulator(baseline_cfg).run(traces)
        libra = repro.GPUSimulator(
            libra_cfg,
            scheduler=repro.LibraScheduler(libra_cfg.scheduler)).run(traces)
        rows.append([
            f"{units} x 4 cores",
            f"{baseline.fps:.1f}",
            f"{libra.fps:.1f}",
            f"{libra.speedup_over(baseline):.3f}",
            f"{(1 - libra.total_energy_j / baseline.total_energy_j) * 100:+.1f}%",
        ])

    print(format_table(
        ("LIBRA config", "baseline fps (1 RU, equal cores)",
         "LIBRA fps", "speedup", "energy saving"),
        rows, title="Raster-Unit scaling on the custom game"))


if __name__ == "__main__":
    main()
