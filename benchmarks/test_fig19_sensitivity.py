"""Figure 19: sensitivity to the scheduler's two thresholds.

(a) Supertile resize threshold: the paper picks 0.25%; raising it slows
    reaction to scene changes and decays toward fixed-size behaviour.
(b) Tile-ordering switch threshold: the paper picks 3%; beyond ~4% the
    ordering hardly ever changes.
"""

from common import SWEEP_SUITE, banner, pedantic, result, run

#: Ten threshold variants per benchmark: sweep four benchmarks.
SUITE = SWEEP_SUITE[:4]

from repro.stats import format_table, geometric_mean

RESIZE_THRESHOLDS = (0.0, 0.0025, 0.05, 0.15)
ORDER_THRESHOLDS = (0.0, 0.03, 0.10)


def _mean_speedup(**overrides):
    speedups = []
    for name in SUITE:
        base = run(name, "baseline")
        libra = run(name, "libra", **overrides)
        speedups.append(libra.speedup_over(base))
    return geometric_mean(speedups)


def collect():
    resize = {t: _mean_speedup(resize_threshold=t)
              for t in RESIZE_THRESHOLDS}
    order = {t: _mean_speedup(order_switch_threshold=t)
             for t in ORDER_THRESHOLDS}
    return resize, order


def test_fig19_threshold_sensitivity(benchmark):
    resize, order = pedantic(benchmark, collect)
    banner("Fig. 19 — scheduler threshold sensitivity",
           "best: 0.25% resize threshold and 3% ordering threshold")
    print(format_table(("resize threshold", "mean speedup"),
                       [[f"{t * 100:.2f}%", f"{s:.3f}"]
                        for t, s in resize.items()],
                       title="(a) supertile resize threshold"))
    print(format_table(("order threshold", "mean speedup"),
                       [[f"{t * 100:.0f}%", f"{s:.3f}"]
                        for t, s in order.items()],
                       title="(b) tile-ordering switch threshold"))
    result("fig19a.speedup_at_paper_threshold", resize[0.0025])
    result("fig19b.speedup_at_paper_threshold", order[0.03])

    # Shape: all thresholds land in a narrow band (the paper's curves are
    # flat within ~2%), and huge resize thresholds do not win — the
    # adaptive mechanism is doing something.
    values = list(resize.values()) + list(order.values())
    assert max(values) - min(values) < 0.08
    assert resize[0.0025] >= resize[0.15] - 0.02
