"""Figure 8: cumulative per-tile DRAM-access difference across frames.

Paper: "more than 80% of the tiles have a difference lower than 20%,
which confirms the high degree of frame-to-frame coherence" — the
property that lets LIBRA predict this frame's tile temperatures from the
last frame's measurements.
"""

from common import FULL_SUITE, banner, pedantic, result, run

from repro.stats import format_table, per_tile_difference_cdf

THRESHOLDS = (0.05, 0.10, 0.20, 0.40, 0.60, 1.00)


def collect():
    per_threshold = {t: [] for t in THRESHOLDS}
    for name in FULL_SUITE:
        summary = run(name, "baseline")
        cdf = per_tile_difference_cdf(summary.per_tile_dram_prev,
                                      summary.per_tile_dram_last,
                                      THRESHOLDS)
        for threshold, fraction in cdf:
            per_threshold[threshold].append(fraction)
    return per_threshold


def test_fig08_frame_coherence(benchmark):
    per_threshold = pedantic(benchmark, collect)
    banner("Fig. 8 — CDF of per-tile DRAM difference, consecutive frames",
           ">80% of tiles change by <20% between consecutive frames")
    rows = []
    means = {}
    for threshold in THRESHOLDS:
        values = per_threshold[threshold]
        means[threshold] = sum(values) / len(values)
        rows.append([f"<= {threshold * 100:.0f}%",
                     f"{means[threshold] * 100:.1f}%"])
    print(format_table(("difference", "fraction of tiles (suite mean)"),
                       rows))
    result("fig8.tiles_below_20pct_difference", means[0.20], paper=0.80)

    # Shape: strong coherence at the 20% threshold, monotone CDF.
    assert means[0.20] > 0.6
    ordered = [means[t] for t in THRESHOLDS]
    assert ordered == sorted(ordered)
    assert means[1.00] == 1.0
