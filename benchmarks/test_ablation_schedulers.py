"""Ablation: LIBRA against the scheduling design space.

Not a paper figure — this brackets LIBRA's two ingredients (balance and
locality) with policies from the paper's related work:

* Hilbert traversal (DTexL's order): pure locality, no balance.
* Reverse-frame traversal (Boustrophedonic Frames): cross-frame L2 reuse.
* Random supertiles: destroys both — the lower bracket.
* Oracle temperature: LIBRA's scheduler with a perfect same-frame
  predictor — the upper bracket for prediction quality, isolating the
  cost of relying on frame-to-frame coherence.
"""

from common import banner, pedantic, result, run

from repro import GPUConfig, GPUSimulator, harness
from repro.core.alternatives import (OracleTemperatureScheduler,
                                     RandomScheduler,
                                     ReverseFrameScheduler,
                                     TraversalScheduler)
from repro.stats import format_table, geometric_mean

SUITE = ("GrT", "SuS", "BlB", "CCS", "TwR", "HoW")


def _run_custom(name, scheduler_factory):
    traces = harness.get_traces(name)
    config, _ = GPUConfig.build(
        "ptr", screen_width=harness.WIDTH, screen_height=harness.HEIGHT)
    simulator = GPUSimulator(config, scheduler=scheduler_factory())
    return simulator.run(traces)


def collect():
    policies = {
        "hilbert": lambda: TraversalScheduler("hilbert"),
        "reverse-frame": ReverseFrameScheduler,
        "random 2x2": lambda: RandomScheduler(size=2, seed=0),
        "oracle temp 4x4": lambda: OracleTemperatureScheduler(4),
    }
    table = {}
    for name in SUITE:
        base = run(name, "baseline")
        row = {"PTR": run(name, "ptr").speedup_over(base),
               "LIBRA": run(name, "libra").speedup_over(base)}
        for label, factory in policies.items():
            custom = _run_custom(name, factory)
            row[label] = base.total_cycles / custom.total_cycles
        table[name] = row
    return table


def test_ablation_scheduler_space(benchmark):
    table = pedantic(benchmark, collect)
    banner("Ablation — the tile-scheduling design space",
           "LIBRA ~ oracle >> random; pure-locality orders in between")
    columns = list(next(iter(table.values())))
    rows = [[name] + [f"{table[name][c]:.3f}" for c in columns]
            for name in SUITE]
    means = {c: geometric_mean([table[n][c] for n in SUITE])
             for c in columns}
    rows.append(["geomean"] + [f"{means[c]:.3f}" for c in columns])
    print(format_table(["bench"] + columns, rows))
    for column, mean in means.items():
        result(f"ablation.{column.replace(' ', '_')}", mean)

    # The frame-coherence predictor loses little against the oracle.
    assert means["LIBRA"] >= means["oracle temp 4x4"] - 0.03
    # Random supertiles are the worst policy of the bunch.
    assert means["random 2x2"] <= min(
        means[c] for c in columns if c != "random 2x2") + 0.01
