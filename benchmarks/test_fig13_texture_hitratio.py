"""Figure 13: increase in overall texture-cache hit ratio vs baseline.

Paper: LIBRA increases the texture L1 hit ratio by 10.6% on average over
the baseline (supertiles preserve intra-unit locality while distant
assignments reduce cross-unit block replication).
"""

from common import MEMORY_SUITE, banner, pedantic, result, run

from repro.figures.expectations import (FIG13_PAPER_LIBRA_HIT_GAIN,
                                        FIG13_PTR_TOLERANCE)
from repro.stats import arithmetic_mean, format_table


def collect():
    rows = []
    for name in MEMORY_SUITE:
        base = run(name, "baseline")
        ptr = run(name, "ptr")
        libra = run(name, "libra")
        rows.append((name, base.texture_hit_ratio, ptr.texture_hit_ratio,
                     libra.texture_hit_ratio))
    return rows


def test_fig13_hit_ratio(benchmark):
    rows = pedantic(benchmark, collect)
    banner("Fig. 13 — texture cache hit ratio vs baseline",
           "LIBRA raises the overall texture hit ratio (avg +10.6% rel.)")
    table = []
    libra_deltas = []
    ptr_deltas = []
    for name, base, ptr, libra in rows:
        libra_deltas.append((libra - base) / base if base else 0.0)
        ptr_deltas.append((ptr - base) / base if base else 0.0)
        table.append([name, f"{base:.3f}", f"{ptr:.3f}", f"{libra:.3f}"])
    print(format_table(("bench", "baseline", "PTR", "LIBRA"), table))
    mean_delta = arithmetic_mean(libra_deltas)
    result("fig13.mean_libra_hit_ratio_change", mean_delta,
           paper=FIG13_PAPER_LIBRA_HIT_GAIN)
    result("fig13.mean_ptr_hit_ratio_change",
           arithmetic_mean(ptr_deltas))

    # Shape: LIBRA does not lose texture locality versus PTR alone —
    # the supertile mechanism recovers what temperature ordering risks.
    assert (mean_delta
            >= arithmetic_mean(ptr_deltas) - FIG13_PTR_TOLERANCE)
    # And hit ratios stay in a sane range.
    assert all(0.0 <= v <= 1.0 for row in rows for v in row[1:])
