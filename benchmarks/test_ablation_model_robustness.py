"""Ablation: robustness of the conclusions to timing-model parameters.

The headline comparison (LIBRA >= PTR > baseline on memory-intensive
apps) should not hinge on arbitrary simulator constants.  This bench
re-runs a representative benchmark pair under perturbed model parameters:

* the coupling interval (500 / 1000 / 2000 cycles),
* the frame-buffer compression extension on/off,

and checks the ordering survives every variant.
"""

from common import banner, pedantic, result

from repro import GPUConfig, GPUSimulator, harness
from repro.stats import format_table

BENCH = "GrT"
INTERVALS = (500, 1000, 2000)


def _speedups(interval=1000, fb_ratio=None):
    traces = harness.get_traces(BENCH)
    cycles = {}
    for kind in ("baseline", "ptr", "libra"):
        config, scheduler = GPUConfig.build(
            kind, screen_width=harness.WIDTH, screen_height=harness.HEIGHT)
        config.interval_cycles = interval
        config.fb_compression_ratio = fb_ratio
        simulator = GPUSimulator(config, scheduler=scheduler, name=kind)
        cycles[kind] = simulator.run(traces).total_cycles
    return (cycles["baseline"] / cycles["ptr"],
            cycles["baseline"] / cycles["libra"])


def collect():
    rows = {}
    for interval in INTERVALS:
        rows[f"interval {interval}"] = _speedups(interval=interval)
    rows["fb compression 0.5"] = _speedups(fb_ratio=0.5)
    return rows


def test_ablation_model_robustness(benchmark):
    rows = pedantic(benchmark, collect)
    banner("Ablation — timing-model robustness (GrT)",
           "the LIBRA >= PTR > baseline ordering survives model "
           "perturbations")
    table = [[label, f"{ptr:.3f}", f"{libra:.3f}"]
             for label, (ptr, libra) in rows.items()]
    print(format_table(("variant", "PTR speedup", "LIBRA speedup"), table))
    for label, (ptr, libra) in rows.items():
        result(f"robust.{label.replace(' ', '_')}.ptr", ptr)
        result(f"robust.{label.replace(' ', '_')}.libra", libra)

    for label, (ptr, libra) in rows.items():
        assert ptr > 1.0, label
        assert libra > ptr * 0.97, label