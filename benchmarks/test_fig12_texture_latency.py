"""Figure 12: decrease in texture access latency w.r.t. the baseline.

Paper: LIBRA reduces mean texture latency by 13.5% on average (up to 40%),
while PTR alone *increases* latency for several benchmarks because it
cannot avoid memory-congestion periods.
"""

from common import MEMORY_SUITE, banner, pedantic, result, run

from repro.figures.expectations import (
    FIG12_MIN_PTR_LATENCY_REGRESSIONS,
    FIG12_PAPER_LIBRA_LATENCY_DECREASE)
from repro.stats import arithmetic_mean, format_table


def collect():
    rows = []
    for name in MEMORY_SUITE:
        base = run(name, "baseline")
        ptr = run(name, "ptr")
        libra = run(name, "libra")
        rows.append((name, base.texture_latency, ptr.texture_latency,
                     libra.texture_latency))
    return rows


def test_fig12_texture_latency(benchmark):
    rows = pedantic(benchmark, collect)
    banner("Fig. 12 — texture access latency vs baseline",
           "PTR alone often raises latency; LIBRA cuts it 13.5% on average")
    table = []
    ptr_deltas = []
    libra_deltas = []
    for name, base, ptr, libra in rows:
        ptr_delta = 1 - ptr / base
        libra_delta = 1 - libra / base
        ptr_deltas.append(ptr_delta)
        libra_deltas.append(libra_delta)
        table.append([name, f"{base:.1f}", f"{ptr:.1f}", f"{libra:.1f}",
                      f"{ptr_delta * 100:+.1f}%",
                      f"{libra_delta * 100:+.1f}%"])
    print(format_table(("bench", "baseline cyc", "PTR cyc", "LIBRA cyc",
                        "PTR delta", "LIBRA delta"), table))
    result("fig12.mean_libra_latency_decrease",
           arithmetic_mean(libra_deltas),
           paper=FIG12_PAPER_LIBRA_LATENCY_DECREASE)
    result("fig12.mean_ptr_latency_decrease",
           arithmetic_mean(ptr_deltas))

    # Shape: PTR alone increases latency for several benchmarks...
    assert (sum(1 for d in ptr_deltas if d < 0)
            >= FIG12_MIN_PTR_LATENCY_REGRESSIONS)
    # ...and LIBRA's scheduler recovers latency versus PTR alone.
    assert arithmetic_mean(libra_deltas) > arithmetic_mean(ptr_deltas)
