"""Figure 18: scaling the number of Raster Units (2, 3, 4).

Paper: LIBRA with N four-core Raster Units versus a single Raster Unit
with the same total core count gives 20.9% / 31.3% / 28.8% for N=2/3/4 —
more units help, with diminishing (and eventually slightly receding)
returns.  Only one unit ever handles the hottest tiles.
"""

from common import SWEEP_SUITE, banner, pedantic, result, run

#: Unit scaling triples the machine configurations; run on five
#: benchmarks spanning the memory-intensity range.
SUITE = SWEEP_SUITE[:5]

from repro.stats import format_table, geometric_mean

UNIT_COUNTS = (2, 3, 4)


def collect():
    table = {}
    for units in UNIT_COUNTS:
        speedups = {}
        for name in SUITE:
            base = run(name, "baseline", raster_units=units,
                       cores_per_unit=4)
            libra = run(name, "libra", raster_units=units,
                        cores_per_unit=4)
            speedups[name] = libra.speedup_over(base)
        table[units] = speedups
    return table


def test_fig18_unit_scaling(benchmark):
    table = pedantic(benchmark, collect)
    banner("Fig. 18 — LIBRA with 2/3/4 Raster Units vs equal-core baseline",
           "average speedups 20.9% / 31.3% / 28.8%")
    rows = []
    for name in SUITE:
        rows.append([name] + [f"{table[u][name]:.3f}"
                              for u in UNIT_COUNTS])
    means = {u: geometric_mean(list(table[u].values()))
             for u in UNIT_COUNTS}
    rows.append(["geomean"] + [f"{means[u]:.3f}" for u in UNIT_COUNTS])
    print(format_table(("bench",) + tuple(f"{u} RUs" for u in UNIT_COUNTS),
                       rows))
    result("fig18.speedup_2RU", means[2], paper=1.209)
    result("fig18.speedup_3RU", means[3], paper=1.313)
    result("fig18.speedup_4RU", means[4], paper=1.288)

    # Shape: every configuration beats its equal-core single-unit
    # baseline, and 3 units beat 2 (the paper's scaling claim).
    assert all(m > 1.0 for m in means.values())
    assert means[3] > means[2]
