"""Section III-E: LIBRA's hardware overhead numbers.

Not a figure, but quantitative claims the paper makes about the
implementation cost, all checkable against the model:

* the stats buffer needs at most 510 entries of 64 bits (~4 KB, <0.2% of
  the 2 MB L2);
* ranking 510 entries costs 4587 comparisons = 13761 cycles;
* the ranking hides under the Geometry phase.
"""

from common import banner, pedantic, result

from repro import harness
from repro.config import baseline_config
from repro.core.ranking import ranking_cycles
from repro.core.temperature import TemperatureTable
from repro.stats import format_table


def collect():
    table = TemperatureTable(60, 34)  # Full HD grid
    traces = harness.get_traces("CCS", frames=2)
    return table, [t.geometry_cycles for t in traces]


def test_hw_overhead(benchmark):
    table, geometry_cycles = pedantic(benchmark, collect)
    banner("Sec. III-E — hardware overhead",
           "510 x 64-bit entries (~4KB, <0.2% of L2); ranking 13761 cyc, "
           "hidden under geometry")
    storage_bytes = table.storage_bits() / 8
    l2_bytes = baseline_config().l2_cache.size_bytes
    rank_cycles = ranking_cycles(table.num_entries)
    rows = [
        ["stats buffer entries", table.num_entries, "510"],
        ["stats buffer size", f"{storage_bytes / 1024:.2f} KB", "~4 KB"],
        ["fraction of L2", f"{storage_bytes / l2_bytes * 100:.2f}%",
         "<0.2%"],
        ["ranking latency", f"{rank_cycles} cyc", "13761 cyc"],
        ["geometry phase (measured, CCS)",
         f"{min(geometry_cycles)} cyc", "~270k cyc (their workloads)"],
    ]
    print(format_table(("quantity", "this model", "paper"), rows))
    result("hw.stats_buffer_entries", table.num_entries, paper=510)
    result("hw.stats_buffer_kb", storage_bytes / 1024, paper=4.0)
    result("hw.ranking_cycles", rank_cycles, paper=13761)

    assert table.num_entries == 510
    assert storage_bytes / l2_bytes < 0.002
    assert rank_cycles == 13761
    # The ranking (at our experiment tile grid, 120 supertiles of 4x4)
    # hides under even our lightest geometry phases.
    experiment_rank = ranking_cycles(120)
    assert experiment_rank < min(geometry_cycles)
