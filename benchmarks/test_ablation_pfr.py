"""Ablation: intra-frame (PTR/LIBRA) vs inter-frame (PFR) parallelism.

PFR (Arnau et al., PACT 2013 — the paper's related work) renders two
*consecutive frames* in parallel on two half-GPUs instead of two tiles of
the same frame.  It exploits inter-frame texture locality but doubles the
frame working set in flight and adds a frame of latency.  Same substrate,
same workloads — which parallelism wins here?
"""

from common import banner, pedantic, result, run

from repro import GPUConfig, harness
from repro.gpu.pfr import PFRSimulator
from repro.stats import format_table, geometric_mean

SUITE = ("GrT", "SuS", "CCS", "BlB", "GDL", "Jet")


def collect():
    table = {}
    for name in SUITE:
        traces = harness.get_traces(name)
        base = run(name, "baseline")
        libra = run(name, "libra")
        config, _ = GPUConfig.build(
            "ptr", screen_width=harness.WIDTH, screen_height=harness.HEIGHT)
        pfr = PFRSimulator(config).run(traces)
        table[name] = {
            "LIBRA": libra.speedup_over(base),
            "PFR": base.total_cycles / pfr.total_cycles,
        }
    return table


def test_ablation_pfr(benchmark):
    table = pedantic(benchmark, collect)
    banner("Ablation — LIBRA (intra-frame) vs PFR (inter-frame) parallelism",
           "both beat the serial baseline; LIBRA needs no extra frame "
           "of latency")
    rows = [[n, f"{table[n]['LIBRA']:.3f}", f"{table[n]['PFR']:.3f}"]
            for n in SUITE]
    libra_mean = geometric_mean([table[n]["LIBRA"] for n in SUITE])
    pfr_mean = geometric_mean([table[n]["PFR"] for n in SUITE])
    rows.append(["geomean", f"{libra_mean:.3f}", f"{pfr_mean:.3f}"])
    print(format_table(("bench", "LIBRA speedup", "PFR speedup"), rows))
    result("ablation.libra_speedup", libra_mean)
    result("ablation.pfr_speedup", pfr_mean)

    # Both parallelization strategies beat the serial baseline.
    assert libra_mean > 1.0
    assert pfr_mean > 0.95
