"""Figure 9: tile-level vs supertile-level heat (HCR).

Paper: "Nearby tiles tend to employ similar textures, and hotspots cover
a cluster of neighboring tiles" — shown as HCR heatmaps at tile and
supertile granularity.  Aggregating to supertiles must preserve the
hot/cold structure (else supertile scheduling couldn't work) while
smoothing single-tile noise.
"""

import numpy as np
from common import banner, pedantic, result, run

from repro.stats import render_ascii, supertile_matrix, tile_matrix


def collect():
    return run("HCR", "baseline")


def test_fig09_supertile_granularity(benchmark):
    summary = pedantic(benchmark, collect)
    banner("Fig. 9 — tile vs supertile heat (HCR)",
           "hotspots cover clusters of neighboring tiles, so supertile "
           "aggregation preserves the heat structure")
    per_tile = summary.per_tile_dram_last
    tiles_x = max(t[0] for t in per_tile) + 1
    tiles_y = max(t[1] for t in per_tile) + 1
    tile_m = tile_matrix(per_tile, tiles_x, tiles_y)
    super_m = supertile_matrix(tile_m, 4)
    print("tile level:")
    print(render_ascii(tile_m))
    print("\n4x4 supertile level:")
    print(render_ascii(super_m))

    # The supertile aggregation conserves total heat ...
    assert super_m.sum() == tile_m.sum()

    # ... and preserves the hot/cold contrast: the hottest supertile is
    # several times the median one.
    flat = np.sort(super_m.flatten())
    contrast = flat[-1] / max(np.median(flat), 1.0)
    result("fig9.supertile_hot_over_median", contrast)
    assert contrast > 2.0

    # Correlation between a tile's heat and its supertile's mean heat is
    # high — heat is spatially clustered at supertile scale.
    by, bx = tile_m.shape
    super_of_tile = np.repeat(np.repeat(super_m, 4, axis=0), 4, axis=1)
    super_of_tile = super_of_tile[:by, :bx] / 16.0
    mask = tile_m > 0
    correlation = np.corrcoef(tile_m[mask], super_of_tile[mask])[0, 1]
    result("fig9.tile_supertile_heat_correlation", correlation)
    assert correlation > 0.5
