"""Table II: the evaluated benchmark suite.

Regenerates the suite table: 32 benchmarks, 2D/2.5D/3D styles, 16/16
memory/compute split (by the paper's >=25%-time-on-memory criterion),
and per-benchmark texture working sets ("the average footprint for all
the benchmarks is more than 4MB").
"""

from common import FULL_SUITE, banner, pedantic, result

from repro.figures.expectations import (TABLE2_MEMORY_INTENSIVE_COUNT,
                                        TABLE2_MIN_MEAN_FOOTPRINT_MB,
                                        TABLE2_SUITE_SIZE)
from repro.stats import format_table
from repro.workloads import table2_rows


def collect():
    return table2_rows()


def test_table2_suite(benchmark):
    rows = pedantic(benchmark, collect)
    banner("Table II — evaluated benchmarks",
           "32 commercial-game stand-ins; 2D/2.5D/3D; >4MB avg footprint")
    table = [[r["name"], r["title"], r["style"],
              "memory" if r["memory_intensive"] else "compute",
              r["textures"], f"{r['texture_mb']:.1f}"]
             for r in rows]
    print(format_table(("code", "title", "style", "class", "textures",
                        "tex MB"), table))

    assert len(rows) == TABLE2_SUITE_SIZE
    styles = {r["style"] for r in rows}
    assert styles == {"2D", "2.5D", "3D"}
    memory_count = sum(1 for r in rows if r["memory_intensive"])
    result("table2.memory_intensive_count", memory_count,
           paper=TABLE2_MEMORY_INTENSIVE_COUNT)
    assert memory_count == TABLE2_MEMORY_INTENSIVE_COUNT

    mean_footprint = sum(r["texture_mb"] for r in rows) / len(rows)
    result("table2.mean_texture_footprint_mb", mean_footprint,
           paper=TABLE2_MIN_MEAN_FOOTPRINT_MB)
    assert mean_footprint > TABLE2_MIN_MEAN_FOOTPRINT_MB
    assert len(FULL_SUITE) == TABLE2_SUITE_SIZE
