"""Table II: the evaluated benchmark suite.

Regenerates the suite table: 32 benchmarks, 2D/2.5D/3D styles, 16/16
memory/compute split (by the paper's >=25%-time-on-memory criterion),
and per-benchmark texture working sets ("the average footprint for all
the benchmarks is more than 4MB").
"""

from common import FULL_SUITE, banner, pedantic, result

from repro.stats import format_table
from repro.workloads import table2_rows


def collect():
    return table2_rows()


def test_table2_suite(benchmark):
    rows = pedantic(benchmark, collect)
    banner("Table II — evaluated benchmarks",
           "32 commercial-game stand-ins; 2D/2.5D/3D; >4MB avg footprint")
    table = [[r["name"], r["title"], r["style"],
              "memory" if r["memory_intensive"] else "compute",
              r["textures"], f"{r['texture_mb']:.1f}"]
             for r in rows]
    print(format_table(("code", "title", "style", "class", "textures",
                        "tex MB"), table))

    assert len(rows) == 32
    styles = {r["style"] for r in rows}
    assert styles == {"2D", "2.5D", "3D"}
    memory_count = sum(1 for r in rows if r["memory_intensive"])
    result("table2.memory_intensive_count", memory_count, paper=16)
    assert memory_count == 16

    mean_footprint = sum(r["texture_mb"] for r in rows) / len(rows)
    result("table2.mean_texture_footprint_mb", mean_footprint, paper=4.0)
    assert mean_footprint > 4.0
    assert len(FULL_SUITE) == 32
