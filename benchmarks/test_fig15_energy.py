"""Figure 15: total GPU energy decrease w.r.t. the baseline.

Paper: 9.2% average energy reduction — 5.5% from PTR alone (shorter
execution -> less static energy) plus 3.7% from the adaptive scheduler;
up to ~20% for AAt and CCS.
"""

from common import MEMORY_SUITE, banner, pedantic, result, run

from repro.figures.expectations import (FIG15_PAPER_LIBRA_SAVING,
                                        FIG15_PAPER_PTR_SAVING,
                                        FIG15_PTR_TOLERANCE)
from repro.stats import arithmetic_mean, format_table


def collect():
    rows = []
    for name in MEMORY_SUITE:
        base = run(name, "baseline")
        ptr = run(name, "ptr")
        libra = run(name, "libra")
        rows.append((name, base.energy_j, ptr.energy_j, libra.energy_j))
    return rows


def test_fig15_energy(benchmark):
    rows = pedantic(benchmark, collect)
    banner("Fig. 15 — total GPU energy vs baseline",
           "PTR saves 5.5%, the scheduler 3.7% more; 9.2% total")
    table = []
    ptr_savings = []
    libra_savings = []
    for name, base, ptr, libra in rows:
        ptr_savings.append(1 - ptr / base)
        libra_savings.append(1 - libra / base)
        table.append([name, f"{base * 1000:.2f}", f"{ptr * 1000:.2f}",
                      f"{libra * 1000:.2f}",
                      f"{libra_savings[-1] * 100:+.1f}%"])
    print(format_table(("bench", "baseline mJ", "PTR mJ", "LIBRA mJ",
                        "LIBRA saving"), table))
    ptr_mean = arithmetic_mean(ptr_savings)
    libra_mean = arithmetic_mean(libra_savings)
    result("fig15.ptr_energy_saving", ptr_mean,
           paper=FIG15_PAPER_PTR_SAVING)
    result("fig15.libra_energy_saving", libra_mean,
           paper=FIG15_PAPER_LIBRA_SAVING)

    # Shape: both save energy; LIBRA saves at least as much as PTR.
    assert ptr_mean > 0.0
    assert libra_mean >= ptr_mean - FIG15_PTR_TOLERANCE
