"""Figure 2: per-tile DRAM-access heatmap of a rendered frame (SuS).

Paper: the heatmap of Subway Surfers shows *hot* tiles around the main
character, HUD bars and detailed props, and *cold* tiles over low-detail
background — the spatial imbalance LIBRA's scheduler exploits.  We
regenerate the heatmap for our SuS stand-in and check the imbalance and
clustering quantitatively.
"""

import numpy as np
from common import banner, pedantic, result, run

from repro.figures.expectations import (FIG2_HOT_FRACTION,
                                        FIG2_HOT_PERCENTILE,
                                        FIG2_MIN_CLUSTERING,
                                        FIG2_MIN_HOT_SHARE)
from repro.stats import hot_cold_summary, render_ascii, tile_matrix


def collect():
    summary = run("SuS", "baseline")
    return summary


def test_fig02_heatmap(benchmark):
    summary = pedantic(benchmark, collect)
    banner("Fig. 2 — per-tile DRAM heatmap (SuS)",
           "hot tiles cluster around the character/HUD; background is cold")
    per_tile = summary.per_tile_dram_last
    tiles_x = max(t[0] for t in per_tile) + 1
    tiles_y = max(t[1] for t in per_tile) + 1
    matrix = tile_matrix(per_tile, tiles_x, tiles_y)
    print(render_ascii(matrix))

    stats = hot_cold_summary(per_tile, hot_fraction=FIG2_HOT_FRACTION)
    result("fig2.top10pct_tile_share_of_dram", stats["hot_share"])

    # Imbalance: the hottest 10% of tiles carry well over 10% of traffic.
    assert stats["hot_share"] > FIG2_MIN_HOT_SHARE

    # Clustering: hot tiles have hot neighbours (spatial autocorrelation).
    hot_threshold = np.percentile(matrix[matrix > 0], FIG2_HOT_PERCENTILE)
    hot_mask = matrix >= hot_threshold
    neighbor_hot = 0
    hot_total = 0
    for y in range(tiles_y):
        for x in range(tiles_x):
            if not hot_mask[y, x]:
                continue
            hot_total += 1
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                if 0 <= nx < tiles_x and 0 <= ny < tiles_y \
                        and hot_mask[ny, nx]:
                    neighbor_hot += 1
                    break
    clustering = neighbor_hot / max(hot_total, 1)
    result("fig2.hot_tile_clustering", clustering)
    # most hot tiles touch another hot tile
    assert clustering > FIG2_MIN_CLUSTERING
