"""Figure 11: LIBRA speedup over the baseline GPU (memory-intensive apps).

Paper: average speedup 20.9% — 13.2% from parallel tile rendering alone
(PTR, blue segments) plus 7.7% from the adaptive temperature scheduler
(orange segments); up to 44.5% for CCS.  The baseline has the same total
core count in a single Raster Unit.
"""

from common import (MEMORY_SUITE, banner, pedantic, print_speedup_table,
                    result, speedups)

from repro.figures.expectations import (FIG11_MAX_REGRESSIONS,
                                        FIG11_MIN_PTR_SPEEDUP,
                                        FIG11_PAPER_LIBRA_SPEEDUP,
                                        FIG11_PAPER_PTR_SPEEDUP,
                                        FIG11_PAPER_SCHEDULER_GAIN,
                                        FIG11_REGRESSION_TOLERANCE)
from repro.stats import geometric_mean


def collect():
    ptr = speedups(MEMORY_SUITE, "ptr")
    libra = speedups(MEMORY_SUITE, "libra")
    return ptr, libra


def test_fig11_speedup_breakdown(benchmark):
    ptr, libra = pedantic(benchmark, collect)
    banner("Fig. 11 — LIBRA speedup vs baseline (memory-intensive)",
           "PTR alone +13.2%; +7.7% more from the scheduler; total +20.9%")
    print_speedup_table("speedup over the 8-core single-RU baseline",
                        MEMORY_SUITE, {"PTR": ptr, "LIBRA": libra})
    ptr_mean = geometric_mean(list(ptr.values()))
    libra_mean = geometric_mean(list(libra.values()))
    result("fig11.ptr_speedup", ptr_mean, paper=FIG11_PAPER_PTR_SPEEDUP)
    result("fig11.libra_speedup", libra_mean,
           paper=FIG11_PAPER_LIBRA_SPEEDUP)
    result("fig11.scheduler_gain", libra_mean / ptr_mean,
           paper=FIG11_PAPER_SCHEDULER_GAIN)

    # Shape: PTR alone beats the baseline; the scheduler adds on top.
    assert ptr_mean > FIG11_MIN_PTR_SPEEDUP
    assert libra_mean > ptr_mean
    # LIBRA helps (or at worst is neutral) for almost every benchmark.
    losses = [n for n in MEMORY_SUITE
              if libra[n] < ptr[n] * FIG11_REGRESSION_TOLERANCE]
    assert len(losses) <= FIG11_MAX_REGRESSIONS, \
        f"LIBRA regressions: {losses}"
