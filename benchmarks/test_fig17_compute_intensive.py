"""Figure 17: speedup on the compute-intensive half of the suite.

Paper: +11.6% total — 9.9% from PTR alone and only 1.7% from the
scheduler, because these applications do not pressure the memory
hierarchy; crucially, the scheduler "does not harm their performance".
"""

from common import (COMPUTE_SUITE, banner, pedantic, print_speedup_table,
                    result, speedups)

from repro.stats import geometric_mean


def collect():
    ptr = speedups(COMPUTE_SUITE, "ptr")
    libra = speedups(COMPUTE_SUITE, "libra")
    return ptr, libra


def test_fig17_compute_intensive(benchmark):
    ptr, libra = pedantic(benchmark, collect)
    banner("Fig. 17 — speedup vs baseline (compute-intensive)",
           "PTR +9.9%; scheduler adds just +1.7%; and never harms")
    print_speedup_table("speedup over the 8-core single-RU baseline",
                        COMPUTE_SUITE, {"PTR": ptr, "LIBRA": libra})
    ptr_mean = geometric_mean(list(ptr.values()))
    libra_mean = geometric_mean(list(libra.values()))
    result("fig17.ptr_speedup", ptr_mean, paper=1.099)
    result("fig17.libra_speedup", libra_mean, paper=1.116)
    result("fig17.scheduler_gain", libra_mean / ptr_mean, paper=1.017)

    # Shape: PTR helps compute-bound apps (limited per-tile parallelism),
    # the scheduler's extra contribution is small, and LIBRA never hurts.
    assert ptr_mean > 1.03
    assert libra_mean >= ptr_mean * 0.99
    assert (libra_mean / ptr_mean) < 1.05  # scheduler gain stays small
    for name in COMPUTE_SUITE:
        assert libra[name] >= ptr[name] * 0.97, name