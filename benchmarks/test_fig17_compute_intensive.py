"""Figure 17: speedup on the compute-intensive half of the suite.

Paper: +11.6% total — 9.9% from PTR alone and only 1.7% from the
scheduler, because these applications do not pressure the memory
hierarchy; crucially, the scheduler "does not harm their performance".
"""

from common import (COMPUTE_SUITE, banner, pedantic, print_speedup_table,
                    result, speedups)

from repro.figures.expectations import (FIG17_MAX_SCHEDULER_GAIN,
                                        FIG17_MEAN_TOLERANCE,
                                        FIG17_MIN_PTR_SPEEDUP,
                                        FIG17_PAPER_LIBRA_SPEEDUP,
                                        FIG17_PAPER_PTR_SPEEDUP,
                                        FIG17_PAPER_SCHEDULER_GAIN,
                                        FIG17_PER_BENCH_TOLERANCE)
from repro.stats import geometric_mean


def collect():
    ptr = speedups(COMPUTE_SUITE, "ptr")
    libra = speedups(COMPUTE_SUITE, "libra")
    return ptr, libra


def test_fig17_compute_intensive(benchmark):
    ptr, libra = pedantic(benchmark, collect)
    banner("Fig. 17 — speedup vs baseline (compute-intensive)",
           "PTR +9.9%; scheduler adds just +1.7%; and never harms")
    print_speedup_table("speedup over the 8-core single-RU baseline",
                        COMPUTE_SUITE, {"PTR": ptr, "LIBRA": libra})
    ptr_mean = geometric_mean(list(ptr.values()))
    libra_mean = geometric_mean(list(libra.values()))
    result("fig17.ptr_speedup", ptr_mean, paper=FIG17_PAPER_PTR_SPEEDUP)
    result("fig17.libra_speedup", libra_mean,
           paper=FIG17_PAPER_LIBRA_SPEEDUP)
    result("fig17.scheduler_gain", libra_mean / ptr_mean,
           paper=FIG17_PAPER_SCHEDULER_GAIN)

    # Shape: PTR helps compute-bound apps (limited per-tile parallelism),
    # the scheduler's extra contribution is small, and LIBRA never hurts.
    assert ptr_mean > FIG17_MIN_PTR_SPEEDUP
    assert libra_mean >= ptr_mean * FIG17_MEAN_TOLERANCE
    # scheduler gain stays small
    assert (libra_mean / ptr_mean) < FIG17_MAX_SCHEDULER_GAIN
    for name in COMPUTE_SUITE:
        assert libra[name] >= ptr[name] * FIG17_PER_BENCH_TOLERANCE, name