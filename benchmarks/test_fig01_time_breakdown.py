"""Figure 1: distribution of GPU execution time per frame.

Paper: "on average, 88% [of the time] is spent on the raster process" —
the observation that motivates attacking the Raster Pipeline at all.
We reproduce the geometry/raster split per benchmark on the baseline GPU.
"""

from common import FULL_SUITE, banner, pedantic, result, run

from repro.figures.expectations import (FIG1_MIN_MEAN_RASTER_FRACTION,
                                        FIG1_MIN_RASTER_FRACTION,
                                        FIG1_PAPER_RASTER_FRACTION)
from repro.stats import arithmetic_mean, format_table


def collect():
    rows = []
    fractions = []
    for name in FULL_SUITE:
        summary = run(name, "baseline")
        raster_fraction = summary.raster_cycles / summary.total_cycles
        fractions.append(raster_fraction)
        rows.append([name, summary.geometry_cycles, summary.raster_cycles,
                     f"{raster_fraction * 100:.1f}%"])
    return rows, fractions


def test_fig01_raster_dominates(benchmark):
    rows, fractions = pedantic(benchmark, collect)
    banner("Fig. 1 — execution-time breakdown",
           "on average 88% of GPU time is spent on the raster process")
    print(format_table(("bench", "geometry cyc", "raster cyc", "raster %"),
                       rows))
    mean_fraction = arithmetic_mean(fractions)
    result("fig1.mean_raster_fraction", mean_fraction,
           paper=FIG1_PAPER_RASTER_FRACTION)
    # Shape check: rasterization dominates for every benchmark.
    assert mean_fraction > FIG1_MIN_MEAN_RASTER_FRACTION
    assert min(fractions) > FIG1_MIN_RASTER_FRACTION
