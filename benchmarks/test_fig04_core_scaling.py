"""Figure 4: speedup of doubling a single Raster Unit from 4 to 8 cores.

Paper: "doubling the number of cores does not work well for many of the
applications ... 16 out of 32 [have speedup below 1.50]", with some (BlB,
CCS) below 1.10.  This is the motivation for parallel tile rendering:
per-tile work cannot keep a wider core array busy.
"""

from common import FULL_SUITE, banner, pedantic, result, run

from repro.stats import format_table


def collect():
    speedups = {}
    for name in FULL_SUITE:
        four = run(name, "baseline4")
        eight = run(name, "baseline8")
        speedups[name] = four.total_cycles / eight.total_cycles
    return speedups


def test_fig04_doubling_cores_disappoints(benchmark):
    speedups = pedantic(benchmark, collect)
    banner("Fig. 4 — speedup of 8 vs 4 cores in one Raster Unit",
           "16 of 32 benchmarks gain < 1.50x from doubling cores")
    rows = sorted(speedups.items(), key=lambda kv: kv[1])
    print(format_table(("bench", "speedup 4->8 cores"),
                       [[n, f"{s:.3f}"] for n, s in rows]))
    below_150 = sum(1 for s in speedups.values() if s < 1.50)
    result("fig4.benchmarks_below_1.5x", below_150, paper=16)
    result("fig4.min_speedup", min(speedups.values()))
    result("fig4.max_speedup", max(speedups.values()))

    # Shape: every speedup is far from the ideal 2x, a large share of the
    # suite is below 1.5x, and nothing slows down.
    assert below_150 >= 8
    assert all(0.95 <= s < 2.0 for s in speedups.values())
