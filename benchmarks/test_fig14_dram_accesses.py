"""Figure 14: main-memory accesses of LIBRA normalized to PTR alone.

Paper: "there is no significant reduction in the number of DRAM accesses
as it is not the design goal" — LIBRA's benefit comes from *when* the
accesses happen, not how many there are; still, some apps drop up to 20%
(CCS).
"""

from common import MEMORY_SUITE, banner, pedantic, result, run

from repro.figures.expectations import (FIG14_MEAN_BAND,
                                        FIG14_PAPER_NORMALIZED_DRAM,
                                        FIG14_PER_BENCH_BAND)
from repro.stats import arithmetic_mean, format_table


def collect():
    rows = []
    for name in MEMORY_SUITE:
        ptr = run(name, "ptr")
        libra = run(name, "libra")
        rows.append((name, ptr.raster_dram_accesses,
                     libra.raster_dram_accesses))
    return rows


def test_fig14_normalized_dram(benchmark):
    rows = pedantic(benchmark, collect)
    banner("Fig. 14 — DRAM accesses, LIBRA normalized to PTR",
           "no significant change: the win is balance over time, not volume")
    table = []
    ratios = []
    for name, ptr, libra in rows:
        ratio = libra / ptr if ptr else 1.0
        ratios.append(ratio)
        table.append([name, ptr, libra, f"{ratio:.3f}"])
    print(format_table(("bench", "PTR accesses", "LIBRA accesses",
                        "normalized"), table))
    mean_ratio = arithmetic_mean(ratios)
    result("fig14.mean_normalized_dram", mean_ratio,
           paper=FIG14_PAPER_NORMALIZED_DRAM)

    # Shape: the scheduler neither inflates nor is designed to shrink
    # DRAM traffic — everything stays within a modest band of 1.0.
    assert FIG14_MEAN_BAND[0] < mean_ratio < FIG14_MEAN_BAND[1]
    assert all(FIG14_PER_BENCH_BAND[0] < r < FIG14_PER_BENCH_BAND[1]
               for r in ratios)
