"""Profile mode for the simulator hot path.

Times the batched hot path against the scalar golden path on one
benchmark and prints a cProfile breakdown of where the batched run
spends its time — the tool used to find (and keep finding) the next
bottleneck.  See ``docs/performance.md`` for the methodology.

``--telemetry-overhead`` switches to a different measurement: the same
run with the telemetry hub enabled vs disabled, plus an estimate of what
the disabled-mode ``if HUB.enabled:`` guards cost.  Exits non-zero when
the estimated disabled-mode overhead exceeds the budget (default 2%) —
CI runs this as the telemetry-overhead gate.

Usage::

    PYTHONPATH=src python benchmarks/profile_hotpath.py            # CCS, 4 frames
    PYTHONPATH=src python benchmarks/profile_hotpath.py --benchmark SuS \
        --frames 8 --top 25 --skip-scalar
    PYTHONPATH=src python benchmarks/profile_hotpath.py \
        --telemetry-overhead --max-overhead-pct 2.0
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
import common  # noqa: F401,E402  (sets REPRO_CACHE_DIR)

from repro import harness  # noqa: E402
from repro.perf import run_kernel  # noqa: E402


def _run(kind: str, traces, batched: bool):
    # The same kernel `repro perf record` times, so profiler numbers
    # and recorded baselines measure identical work.
    return run_kernel(kind, traces, harness.WIDTH, harness.HEIGHT,
                      batched=batched)


def _measure_telemetry_overhead(args) -> int:
    """Measure enabled-vs-disabled telemetry cost; gate the disabled side.

    Two numbers:

    * **enabled overhead** — wall-clock delta of a run with a recording
      sink attached vs the plain run.  Informational: paying for
      telemetry you asked for is fine.
    * **estimated disabled overhead** — what the dormant
      ``if HUB.enabled:`` guards cost when nobody asked for telemetry.
      The guard count is not directly observable, so it is bounded from
      the enabled run's event count times a conservative factor (every
      emit site evaluates its guard at least once per event; metric
      updates and not-taken guards are covered by the factor), priced at
      a ``timeit``-measured per-check cost.  This is the number the
      ``--max-overhead-pct`` gate (default 2%) applies to.
    """
    import timeit

    from repro.telemetry import HUB, RecordingSink, telemetry_session

    traces = harness.get_traces(args.benchmark, frames=args.frames)
    print(f"telemetry overhead: {args.benchmark}/{args.kind}, "
          f"{args.frames} frames, best of {args.repeat}")
    _run(args.kind, traces, batched=True)  # warm-up (caches, imports)

    disabled_s = min(
        _timed(lambda: _run(args.kind, traces, batched=True))
        for _ in range(args.repeat))

    sink = RecordingSink()
    enabled_times = []
    with telemetry_session(sink):
        for _ in range(args.repeat):
            sink.clear()
            HUB.metrics.reset()
            enabled_times.append(
                _timed(lambda: _run(args.kind, traces, batched=True)))
    enabled_s = min(enabled_times)
    events = len(sink.events)

    checks = 1_000_000
    per_check_s = timeit.timeit("if h.enabled: pass",
                                globals={"h": HUB},
                                number=checks) / checks
    # Bound the number of dormant guard evaluations per run: every event
    # of the enabled run evaluates its guard, and sites whose guard was
    # not taken (per-tile metric updates, frame snapshots) add a few
    # more — 3x is comfortably above the instrumentation density.
    guard_count = events * 3
    disabled_overhead_s = per_check_s * guard_count
    disabled_pct = 100.0 * disabled_overhead_s / disabled_s
    enabled_pct = 100.0 * (enabled_s - disabled_s) / disabled_s

    print(f"disabled:          {disabled_s:8.3f}s")
    print(f"enabled:           {enabled_s:8.3f}s  ({enabled_pct:+.1f}%, "
          f"{events:,} events)")
    print(f"guard check:       {per_check_s * 1e9:8.1f}ns  "
          f"(x{guard_count:,} guards = {disabled_overhead_s * 1e3:.3f}ms)")
    print(f"disabled overhead: {disabled_pct:8.3f}%  "
          f"(budget {args.max_overhead_pct:.1f}%)")
    if disabled_pct > args.max_overhead_pct:
        print(f"ERROR: disabled-mode telemetry overhead {disabled_pct:.3f}% "
              f"exceeds {args.max_overhead_pct:.1f}% budget",
              file=sys.stderr)
        return 1
    print("overhead gate OK")
    return 0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="profile the simulator's memory hot path")
    parser.add_argument("--benchmark", default="CCS")
    parser.add_argument("--kind", default="libra")
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--top", type=int, default=20,
                        help="profile rows to print")
    parser.add_argument("--skip-scalar", action="store_true",
                        help="skip the scalar reference timing")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"))
    parser.add_argument("--telemetry-overhead", action="store_true",
                        help="measure telemetry enabled-vs-disabled cost "
                             "and gate the disabled-mode overhead")
    parser.add_argument("--max-overhead-pct", type=float, default=2.0,
                        help="fail --telemetry-overhead above this "
                             "disabled-mode overhead percentage")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions for --telemetry-overhead")
    args = parser.parse_args(argv)

    if args.telemetry_overhead:
        return _measure_telemetry_overhead(args)

    traces = harness.get_traces(args.benchmark, frames=args.frames)
    print(f"{args.benchmark}/{args.kind}, {args.frames} frames")

    start = time.perf_counter()
    batched = _run(args.kind, traces, batched=True)
    batched_s = time.perf_counter() - start
    print(f"batched: {batched_s:8.2f}s   "
          f"({batched.total_cycles:,} simulated cycles)")

    if not args.skip_scalar:
        start = time.perf_counter()
        scalar = _run(args.kind, traces, batched=False)
        scalar_s = time.perf_counter() - start
        print(f"scalar:  {scalar_s:8.2f}s   "
              f"({scalar.total_cycles:,} simulated cycles)")
        if scalar.total_cycles != batched.total_cycles:
            print("ERROR: batched/scalar cycle mismatch — parity broken",
                  file=sys.stderr)
            return 1
        print(f"speedup: {scalar_s / batched_s:8.2f}x  (parity OK)")

    print(f"\ncProfile of the batched run (top {args.top} by "
          f"{args.sort}):")
    profiler = cProfile.Profile()
    profiler.enable()
    _run(args.kind, traces, batched=True)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
