"""Profile mode for the simulator hot path.

Times the batched hot path against the scalar golden path on one
benchmark and prints a cProfile breakdown of where the batched run
spends its time — the tool used to find (and keep finding) the next
bottleneck.  See ``docs/performance.md`` for the methodology.

Usage::

    PYTHONPATH=src python benchmarks/profile_hotpath.py            # CCS, 4 frames
    PYTHONPATH=src python benchmarks/profile_hotpath.py --benchmark SuS \
        --frames 8 --top 25 --skip-scalar
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
import common  # noqa: F401,E402  (sets REPRO_CACHE_DIR)

from repro import harness  # noqa: E402
from repro.gpu import GPUSimulator  # noqa: E402


def _run(kind: str, traces, batched: bool):
    config, scheduler = harness.make_config(kind)
    sim = GPUSimulator(config, scheduler=scheduler, name=kind,
                       batched=batched)
    return sim.run(traces)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="profile the simulator's memory hot path")
    parser.add_argument("--benchmark", default="CCS")
    parser.add_argument("--kind", default="libra")
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--top", type=int, default=20,
                        help="profile rows to print")
    parser.add_argument("--skip-scalar", action="store_true",
                        help="skip the scalar reference timing")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"))
    args = parser.parse_args(argv)

    traces = harness.get_traces(args.benchmark, frames=args.frames)
    print(f"{args.benchmark}/{args.kind}, {args.frames} frames")

    start = time.perf_counter()
    batched = _run(args.kind, traces, batched=True)
    batched_s = time.perf_counter() - start
    print(f"batched: {batched_s:8.2f}s   "
          f"({batched.total_cycles:,} simulated cycles)")

    if not args.skip_scalar:
        start = time.perf_counter()
        scalar = _run(args.kind, traces, batched=False)
        scalar_s = time.perf_counter() - start
        print(f"scalar:  {scalar_s:8.2f}s   "
              f"({scalar.total_cycles:,} simulated cycles)")
        if scalar.total_cycles != batched.total_cycles:
            print("ERROR: batched/scalar cycle mismatch — parity broken",
                  file=sys.stderr)
            return 1
        print(f"speedup: {scalar_s / batched_s:8.2f}x  (parity OK)")

    print(f"\ncProfile of the batched run (top {args.top} by "
          f"{args.sort}):")
    profiler = cProfile.Profile()
    profiler.enable()
    _run(args.kind, traces, batched=True)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
