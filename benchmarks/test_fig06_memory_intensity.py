"""Figure 6: memory intensiveness and its anticorrelation with PTR speedup.

(a) Fraction of execution time spent on memory accesses — measured, as in
    the paper, by simulating with the real memory system and again with an
    ideal one (every access hits L1) and differencing.
(b) The speedup of two Raster Units over one, versus that fraction: the
    more memory-bound an application, the less PTR alone helps.

Paper: "these two metrics are strongly correlated"; benchmarks with >= 25%
of time on memory are classified memory-intensive (16 of the 32).
"""

from common import FULL_SUITE, banner, pedantic, result, run

from repro import harness
from repro.stats import format_table
from repro.workloads import get_params


def collect():
    rows = []
    for name in FULL_SUITE:
        fraction = harness.memory_time_fraction(name)
        base = run(name, "baseline")
        ptr = run(name, "ptr")
        rows.append((name, fraction, ptr.speedup_over(base)))
    return rows


def _pearson(xs, ys):
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs) ** 0.5
    vy = sum((y - my) ** 2 for y in ys) ** 0.5
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy)


def test_fig06_memory_fraction_vs_speedup(benchmark):
    rows = pedantic(benchmark, collect)
    banner("Fig. 6 — memory time breakdown & correlation with PTR speedup",
           "memory-bound apps (>=25% time on memory) gain least from PTR")
    table = [[name, f"{frac * 100:.1f}%", f"{speedup:.3f}",
              "memory" if get_params(name).memory_intensive else "compute"]
             for name, frac, speedup in sorted(rows, key=lambda r: -r[1])]
    print(format_table(("bench", "time on memory", "PTR speedup",
                        "expected class"), table))

    fractions = [r[1] for r in rows]
    speedups = [r[2] for r in rows]
    correlation = _pearson(fractions, speedups)
    result("fig6.pearson_memfrac_vs_speedup", correlation)
    classified_memory = sum(1 for f in fractions if f >= 0.25)
    result("fig6.benchmarks_over_25pct_memory", classified_memory,
           paper=16)

    # Shape: anticorrelation between memory intensity and PTR speedup.
    assert correlation < -0.3
    # A substantial part of the suite has significant memory activity.
    assert classified_memory >= 6
    # The designed memory-intensive half really is more memory-bound.
    memory_avg = sum(f for (n, f, s) in rows
                     if get_params(n).memory_intensive) / 16
    compute_avg = sum(f for (n, f, s) in rows
                      if not get_params(n).memory_intensive) / 16
    assert memory_avg > 2 * compute_avg
