"""Figure 7: DRAM requests per 5000-cycle interval within a CCS frame.

Paper: "there are certain intervals which are much more memory-intensive
than others" — the bursty demand profile that motivates smoothing.  We
regenerate the series for our CCS stand-in on the baseline GPU, then show
that LIBRA's temperature scheduling reduces the burstiness.
"""

from common import banner, pedantic, result, run

from repro.figures.expectations import (FIG7_MIN_BASELINE_COV,
                                        FIG7_MIN_PEAK_OVER_MEAN,
                                        FIG7_REBIN as REBIN)
from repro.stats import (coefficient_of_variation, format_series,
                         rebin_series)


def collect():
    baseline = run("CCS", "baseline")
    libra = run("CCS", "libra")
    return baseline, libra


def test_fig07_dram_burstiness(benchmark):
    baseline, libra = pedantic(benchmark, collect)
    banner("Fig. 7 — DRAM requests per 5000-cycle interval (CCS)",
           "memory demand within a frame is strongly bursty")
    base_series = rebin_series(baseline.last_frame_intervals, REBIN)
    libra_series = rebin_series(libra.last_frame_intervals, REBIN)
    print(format_series("baseline", base_series))
    print(format_series("libra   ", libra_series))

    base_cov = coefficient_of_variation(base_series)
    libra_cov = coefficient_of_variation(libra_series)
    result("fig7.baseline_interval_cov", base_cov)
    result("fig7.libra_interval_cov", libra_cov)
    peak_over_mean = max(base_series) / (sum(base_series)
                                         / len(base_series))
    result("fig7.baseline_peak_over_mean", peak_over_mean)

    # Shape: visible burstiness on the baseline (peaks well above the
    # mean), i.e. there is something for the scheduler to smooth.
    assert peak_over_mean > FIG7_MIN_PEAK_OVER_MEAN
    assert base_cov > FIG7_MIN_BASELINE_COV
