"""Table I: GPU simulation parameters.

Checks that the library's default configuration reproduces the paper's
simulated machine, and prints the table.
"""

import pytest
from common import banner, pedantic

from repro.config import GPU_FREQUENCY_HZ, baseline_config, libra_config
from repro.figures.expectations import (TABLE1_DRAM_ROW_HIT_CYCLES,
                                        TABLE1_DRAM_ROW_MISS_CYCLES,
                                        TABLE1_FREQUENCY_HZ,
                                        TABLE1_L2_CACHE_BYTES,
                                        TABLE1_TEXTURE_CACHE_BYTES,
                                        TABLE1_TILE_CACHE_BYTES,
                                        TABLE1_TILE_SIZE,
                                        TABLE1_TOTAL_CORES,
                                        TABLE1_VERTEX_CACHE_BYTES)
from repro.stats import format_table


def collect():
    return baseline_config(), libra_config()


def test_table1_parameters(benchmark):
    base, libra = pedantic(benchmark, collect)
    banner("Table I — GPU simulation parameters", "see paper Table I")
    rows = [
        ["Frequency", f"{base.frequency_hz / 1e6:.0f} MHz", "800 MHz"],
        ["Screen", f"{base.screen_width}x{base.screen_height}",
         "1920x1080"],
        ["Tile size", f"{base.tile_size}x{base.tile_size} px",
         "32x32 px"],
        ["DRAM size", f"{base.dram.size_bytes // 1024 ** 3} GB", "8 GB"],
        ["DRAM latency",
         f"{base.dram.row_hit_cycles}-{base.dram.row_miss_cycles} cyc",
         "50-100 cyc"],
        ["Vertex cache", f"{base.vertex_cache.size_bytes // 1024} KB "
         f"{base.vertex_cache.ways}-way", "4KB 2-way"],
        ["Tile cache", f"{base.tile_cache.size_bytes // 1024} KB "
         f"{base.tile_cache.ways}-way", "32KB 4-way"],
        ["Texture cache/core",
         f"{base.texture_cache.size_bytes // 1024} KB "
         f"{base.texture_cache.ways}-way", "32KB 4-way"],
        ["L2 cache", f"{base.l2_cache.size_bytes // 1024 ** 2} MB "
         f"{base.l2_cache.ways}-way", "2MB 8-way"],
        ["Baseline RUs x cores",
         f"{base.num_raster_units} x {base.raster_unit.num_cores}",
         "1 x 8"],
        ["LIBRA RUs x cores",
         f"{libra.num_raster_units} x {libra.raster_unit.num_cores}",
         "2 x 4"],
    ]
    print(format_table(("parameter", "this model", "paper"), rows))

    assert base.frequency_hz == GPU_FREQUENCY_HZ == TABLE1_FREQUENCY_HZ
    assert (base.screen_width, base.screen_height) == (1920, 1080)
    assert base.tile_size == TABLE1_TILE_SIZE
    assert base.num_tiles == 2040
    assert base.vertex_cache.size_bytes == TABLE1_VERTEX_CACHE_BYTES
    assert base.tile_cache.size_bytes == TABLE1_TILE_CACHE_BYTES
    assert base.texture_cache.size_bytes == TABLE1_TEXTURE_CACHE_BYTES
    assert base.l2_cache.size_bytes == TABLE1_L2_CACHE_BYTES
    assert base.l2_cache.latency_cycles == 18
    assert ((base.dram.row_hit_cycles, base.dram.row_miss_cycles)
            == (TABLE1_DRAM_ROW_HIT_CYCLES, TABLE1_DRAM_ROW_MISS_CYCLES))
    assert base.total_cores == libra.total_cores == TABLE1_TOTAL_CORES
