"""Shared plumbing for the figure/table reproduction benchmarks.

Every ``test_fig*.py`` / ``test_table*.py`` file regenerates one table or
figure of the paper.  They all run the simulator through
:mod:`repro.harness`, which caches traces and run summaries on disk, so
the suite is incremental: the first run simulates, later runs re-print.

Conventions:

* each bench prints an ``EXPERIMENT`` banner with the paper's claim,
  a per-benchmark table, and grep-friendly ``RESULT key: measured=...
  paper=...`` lines that EXPERIMENTS.md quotes;
* ``benchmark.pedantic(..., rounds=1, iterations=1)`` wraps the run so
  pytest-benchmark records wall time without repeating multi-minute
  simulations.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Sequence

# Default the cache to the repository root so bench runs and ad-hoc
# harness runs share traces and results.
os.environ.setdefault(
    "REPRO_CACHE_DIR",
    os.path.join(os.path.dirname(__file__), os.pardir, ".repro_cache"))

from repro import harness  # noqa: E402  (after cache env setup)
from repro.stats import (experiment_header, format_table, geometric_mean,
                         summary_line)  # noqa: E402
from repro.workloads import (benchmark_names, compute_intensive_names,
                             memory_intensive_names)  # noqa: E402

FRAMES = harness.FRAMES

#: All 32 benchmarks / the paper's two classes.
FULL_SUITE: List[str] = benchmark_names()
MEMORY_SUITE: List[str] = memory_intensive_names()
COMPUTE_SUITE: List[str] = compute_intensive_names()

#: Subset used by the expensive sweeps (Figures 18/19): a spread of
#: memory intensity.
SWEEP_SUITE: List[str] = ["CCS", "GrT", "SuS", "HoW", "BlB", "GDL", "Jet",
                          "PzQ"]


def run(benchmark: str, kind: str, **kwargs) -> harness.RunSummary:
    return harness.run_simulation(benchmark, kind, **kwargs)


def speedups(suite: Sequence[str], kind: str, baseline_kind: str = "baseline",
             **kwargs) -> Dict[str, float]:
    out = {}
    for name in suite:
        base = run(name, baseline_kind)
        other = run(name, kind, **kwargs)
        out[name] = other.speedup_over(base)
    return out


def print_speedup_table(title: str, suite: Sequence[str],
                        columns: Dict[str, Dict[str, float]]) -> None:
    headers = ["bench"] + list(columns)
    rows = []
    for name in suite:
        rows.append([name] + [f"{columns[c][name]:.3f}" for c in columns])
    rows.append(["geomean"] + [
        f"{geometric_mean(list(columns[c].values())):.3f}"
        for c in columns])
    print(format_table(headers, rows, title=title))


def banner(figure: str, claim: str) -> None:
    print(experiment_header(figure, claim))


def result(key: str, measured, paper=None) -> None:
    print(summary_line(key, measured, paper))


def pedantic(benchmark_fixture, fn: Callable, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark_fixture.pedantic(fn, args=args, kwargs=kwargs,
                                      rounds=1, iterations=1)
