"""Figure 16: static supertile sizes vs LIBRA, relative to PTR alone.

Paper: static 2x2/4x4/8x8/16x16 supertiles (Z-order, temperature ranking
off) give 0.6/2.1/2.8/3.2% average speedups over PTR, while full LIBRA
reaches ~7%; for a few benchmarks a fixed size wins (locality matters
more than congestion there).
"""

from common import (MEMORY_SUITE, banner, pedantic, print_speedup_table,
                    result, speedups)

#: The static-size sweep runs on a representative half of the memory
#: suite (4 extra configurations x 16 benchmarks is the most expensive
#: sweep of the whole harness; the half preserves the spread).
SWEEP = MEMORY_SUITE[:8]

from repro.stats import geometric_mean

SIZES = (2, 4, 8, 16)


def collect():
    columns = {}
    for size in SIZES:
        columns[f"static {size}x{size}"] = speedups(
            SWEEP, f"supertile{size}", baseline_kind="ptr")
    columns["LIBRA"] = speedups(SWEEP, "libra",
                                baseline_kind="ptr")
    return columns


def test_fig16_static_vs_dynamic(benchmark):
    columns = pedantic(benchmark, collect)
    banner("Fig. 16 — static supertiles and LIBRA vs PTR alone",
           "static sizes: +0.6/2.1/2.8/3.2%; LIBRA: ~+7%")
    print_speedup_table("speedup over PTR (interleaved Z-order)",
                        SWEEP, columns)
    means = {name: geometric_mean(list(values.values()))
             for name, values in columns.items()}
    for name, mean in means.items():
        result(f"fig16.{name.replace(' ', '_')}", mean)

    # Shape: LIBRA (adaptive order + size) beats every static size on
    # average, and no static size is catastrophic.
    libra_mean = means["LIBRA"]
    static_means = [means[f"static {s}x{s}"] for s in SIZES]
    assert libra_mean >= max(static_means) - 0.005
    assert all(m > 0.9 for m in static_means)
    # Some benchmark prefers a fixed size over LIBRA (paper observes
    # BBR/Gra/RoK do) — adaptivity is not uniformly dominant.
    beats_libra = [
        n for n in SWEEP
        if max(columns[f"static {s}x{s}"][n] for s in SIZES)
        > columns["LIBRA"][n]]
    result("fig16.benchmarks_where_a_static_size_wins", len(beats_libra))
