"""pytest configuration for the figure/table reproduction benches."""

import sys
from pathlib import Path

# Make `import common` work when pytest is invoked from the repo root.
sys.path.insert(0, str(Path(__file__).parent))
