"""Legacy installer shim: all metadata lives in pyproject.toml.

Kept so ancient tooling that insists on ``setup.py`` still resolves the
project (including the ``numpy>=1.21`` floor declared there — see
``repro.compat.NUMPY_FLOOR`` for the matching runtime gate).
"""

from setuptools import setup

setup()
